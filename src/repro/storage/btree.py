"""B+-tree indexes over buffer-pool pages.

Nodes are pool pages of :class:`~repro.buffer.frames.PageKind.INDEX`.
Index statistics — entry count, distinct keys, leaf pages, and a
clustering measure — are maintained in real time during operation, as the
paper requires ("index statistics, such as the number of distinct values,
number of leaf pages, and clustering statistics, are maintained in real
time during server operation", Section 3.2).
"""

import bisect

from repro.buffer.frames import PageKind
from repro.common.errors import ExecutionError

#: NULL sorts before every value; encoded keys are tuples of
#: (tag, value) pairs so mixed NULL/value comparisons stay well-defined.
_NULL_TAG = 0
_VALUE_TAG = 1


def encode_key(values):
    """Encode a tuple of column values as a sortable key."""
    return tuple(
        (_NULL_TAG, None) if value is None else (_VALUE_TAG, value)
        for value in values
    )


def decode_key(key):
    """Inverse of :func:`encode_key`."""
    return tuple(value for __, value in key)


class BTreeStats:
    """Real-time statistics for one index."""

    def __init__(self):
        self.entry_count = 0
        self.leaf_page_count = 0
        self._key_counts = {}

    @property
    def distinct_keys(self):
        return len(self._key_counts)

    def note_insert(self, key):
        self.entry_count += 1
        self._key_counts[key] = self._key_counts.get(key, 0) + 1

    def note_delete(self, key):
        self.entry_count -= 1
        count = self._key_counts.get(key, 0)
        if count <= 1:
            self._key_counts.pop(key, None)
        else:
            self._key_counts[key] = count - 1

    def density(self):
        """Average fraction of entries sharing one key (selectivity of an
        equality probe on an 'average' key)."""
        if self.entry_count == 0 or self.distinct_keys == 0:
            return 0.0
        return 1.0 / self.distinct_keys


class BTree:
    """A B+-tree mapping encoded keys to row ids (duplicates allowed)."""

    def __init__(self, file, pool, fanout=64, name="idx"):
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.file = file
        self.pool = pool
        self.fanout = fanout
        self.name = name
        self.stats = BTreeStats()
        root = self._new_node(leaf=True)
        self._root_page = root
        self.stats.leaf_page_count = 1
        self.height = 1

    # ------------------------------------------------------------------ #
    # node helpers (payload layout: dict)
    # ------------------------------------------------------------------ #

    def _new_node(self, leaf):
        payload = {
            "leaf": leaf,
            "keys": [],
            # leaf: values[i] is a list of row ids for keys[i]; next page no.
            # internal: children has len(keys)+1 page numbers.
            "values": [] if leaf else None,
            "children": None if leaf else [],
            "next": None,
        }
        with self.pool.pin_guard(
            self.pool.new_page(self.file, PageKind.INDEX, payload=payload),
            dirty=True,
        ) as frame:
            return frame.page_no

    def _read(self, page_no):
        """Pin a node frame; caller must unpin."""
        return self.pool.fetch(self.file, page_no, PageKind.INDEX)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def search(self, values):
        """Row ids whose key equals ``values`` exactly."""
        key = encode_key(values)
        page_no = self._descend_to_leaf(key)
        frame = self._read(page_no)
        try:
            node = frame.payload
            index = bisect.bisect_left(node["keys"], key)
            if index < len(node["keys"]) and node["keys"][index] == key:
                return list(node["values"][index])
            return []
        finally:
            self.pool.unpin(frame)

    def prefix_scan(self, values):
        """Yield ``(decoded_key, row_id)`` for keys whose leading columns
        equal ``values`` (equality probe on a composite index prefix)."""
        prefix = encode_key(values)
        n = len(prefix)
        page_no = self._descend_to_leaf(prefix)
        while page_no is not None:
            frame = self._read(page_no)
            try:
                node = frame.payload
                keys = list(node["keys"])
                value_lists = [list(v) for v in node["values"]]
                next_page = node["next"]
            finally:
                self.pool.unpin(frame)
            for key, row_ids in zip(keys, value_lists):
                head = key[:n]
                if head < prefix:
                    continue
                if head > prefix:
                    return
                decoded = decode_key(key)
                for row_id in row_ids:
                    yield decoded, row_id
            page_no = next_page

    def range_scan(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Yield ``(decoded_key, row_id)`` over [low, high] in key order.

        ``low``/``high`` are tuples of column values (or None for
        unbounded).
        """
        low_key = encode_key(low) if low is not None else None
        high_key = encode_key(high) if high is not None else None
        if low_key is not None:
            page_no = self._descend_to_leaf(low_key)
        else:
            page_no = self._leftmost_leaf()
        while page_no is not None:
            frame = self._read(page_no)
            try:
                node = frame.payload
                keys = list(node["keys"])
                value_lists = [list(v) for v in node["values"]]
                next_page = node["next"]
            finally:
                self.pool.unpin(frame)
            for key, row_ids in zip(keys, value_lists):
                if low_key is not None:
                    if key < low_key or (key == low_key and not low_inclusive):
                        continue
                if high_key is not None:
                    if key > high_key or (key == high_key and not high_inclusive):
                        return
                decoded = decode_key(key)
                for row_id in row_ids:
                    yield decoded, row_id
            page_no = next_page

    def __len__(self):
        return self.stats.entry_count

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    def insert(self, values, row_id):
        """Insert ``(values, row_id)``."""
        key = encode_key(values)
        split = self._insert_into(self._root_page, key, row_id)
        if split is not None:
            separator, new_page = split
            new_root = self._new_node(leaf=False)
            frame = self._read(new_root)
            try:
                frame.payload["keys"] = [separator]
                frame.payload["children"] = [self._root_page, new_page]
            finally:
                self.pool.unpin(frame, dirty=True)
            self._root_page = new_root
            self.height += 1
        self.stats.note_insert(key)

    def delete(self, values, row_id):
        """Remove one ``(values, row_id)`` entry (no rebalancing; pages
        merely under-fill, which only wastes space in a simulation)."""
        key = encode_key(values)
        page_no = self._descend_to_leaf(key)
        frame = self._read(page_no)
        try:
            node = frame.payload
            index = bisect.bisect_left(node["keys"], key)
            if index >= len(node["keys"]) or node["keys"][index] != key:
                raise ExecutionError("key %r not found in index %r" % (values, self.name))
            try:
                node["values"][index].remove(row_id)
            except ValueError:
                raise ExecutionError(
                    "row %r not present under key %r in index %r"
                    % (row_id, values, self.name)
                ) from None
            if not node["values"][index]:
                del node["keys"][index]
                del node["values"][index]
        finally:
            self.pool.unpin(frame, dirty=True)
        self.stats.note_delete(key)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def cached_clustering(self, staleness=0.2):
        """Clustering statistic, recomputed only after the index has
        changed by ``staleness`` (fraction of entries) since the last
        computation — cheap enough for per-optimization use."""
        cached = getattr(self, "_clustering_cache", None)
        entries = max(1, self.stats.entry_count)
        if cached is not None:
            computed_at, value = cached
            if abs(entries - computed_at) / max(1, computed_at) < staleness:
                return value
        value = self.clustering_fraction()
        self._clustering_cache = (entries, value)
        return value

    def clustering_fraction(self, sample_limit=2048):
        """Fraction of consecutive index entries whose rows are on the
        same or adjacent table pages — the clustering statistic the cost
        model uses to price index scans."""
        previous_page = None
        adjacent = 0
        total = 0
        for __, row_id in self.range_scan():
            page = row_id.page_ordinal
            if previous_page is not None:
                total += 1
                if abs(page - previous_page) <= 1:
                    adjacent += 1
            previous_page = page
            if total >= sample_limit:
                break
        if total == 0:
            return 1.0
        return adjacent / total

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _descend_to_leaf(self, key):
        page_no = self._root_page
        while True:
            frame = self._read(page_no)
            try:
                node = frame.payload
                if node["leaf"]:
                    return page_no
                index = bisect.bisect_right(node["keys"], key)
                page_no = node["children"][index]
            finally:
                self.pool.unpin(frame)

    def _leftmost_leaf(self):
        page_no = self._root_page
        while True:
            frame = self._read(page_no)
            try:
                node = frame.payload
                if node["leaf"]:
                    return page_no
                page_no = node["children"][0]
            finally:
                self.pool.unpin(frame)

    def _insert_into(self, page_no, key, row_id):
        """Recursive insert; returns (separator, new_page) on split."""
        frame = self._read(page_no)
        try:
            node = frame.payload
            if node["leaf"]:
                index = bisect.bisect_left(node["keys"], key)
                if index < len(node["keys"]) and node["keys"][index] == key:
                    node["values"][index].append(row_id)
                else:
                    node["keys"].insert(index, key)
                    node["values"].insert(index, [row_id])
                frame.dirty = True
                if len(node["keys"]) > self.fanout:
                    return self._split_leaf(page_no, node)
                return None
            index = bisect.bisect_right(node["keys"], key)
            child = node["children"][index]
        finally:
            self.pool.unpin(frame, dirty=True)
        split = self._insert_into(child, key, row_id)
        if split is None:
            return None
        separator, new_page = split
        frame = self._read(page_no)
        try:
            node = frame.payload
            index = bisect.bisect_right(node["keys"], separator)
            node["keys"].insert(index, separator)
            node["children"].insert(index + 1, new_page)
            if len(node["keys"]) > self.fanout:
                return self._split_internal(page_no, node)
            return None
        finally:
            self.pool.unpin(frame, dirty=True)

    def _split_leaf(self, page_no, node):
        middle = len(node["keys"]) // 2
        new_page = self._new_node(leaf=True)
        frame = self._read(new_page)
        try:
            new_node = frame.payload
            new_node["keys"] = node["keys"][middle:]
            new_node["values"] = node["values"][middle:]
            new_node["next"] = node["next"]
        finally:
            self.pool.unpin(frame, dirty=True)
        node["keys"] = node["keys"][:middle]
        node["values"] = node["values"][:middle]
        node["next"] = new_page
        self.stats.leaf_page_count += 1
        separator = None
        frame = self._read(new_page)
        try:
            separator = frame.payload["keys"][0]
        finally:
            self.pool.unpin(frame)
        return separator, new_page

    def _split_internal(self, page_no, node):
        middle = len(node["keys"]) // 2
        separator = node["keys"][middle]
        new_page = self._new_node(leaf=False)
        frame = self._read(new_page)
        try:
            new_node = frame.payload
            new_node["keys"] = node["keys"][middle + 1 :]
            new_node["children"] = node["children"][middle + 1 :]
        finally:
            self.pool.unpin(frame, dirty=True)
        node["keys"] = node["keys"][:middle]
        node["children"] = node["children"][: middle + 1]
        return separator, new_page
