"""Simulated disk devices.

Every device charges the simulated clock for each page transfer and keeps
counters for the benchmarks.  Cost depends on the *distance* between the
previous access and the new one — the same locality notion the DTT model's
"band size" abstracts: distance 1 is sequential, larger distances approach
fully random access.
"""

import math
import random

from repro.common.units import KiB, SECOND
from repro.dtt.model import READ, WRITE


class Disk:
    """Base device: counters, head tracking, and clock charging."""

    def __init__(self, clock, size_pages, page_size=4 * KiB, name="disk"):
        if size_pages < 1:
            raise ValueError("device must have at least one page")
        self.clock = clock
        self.size_pages = int(size_pages)
        self.page_size = int(page_size)
        self.name = name
        self.reads = 0
        self.writes = 0
        self.busy_us = 0
        self._head = 0

    # -- cost hooks (subclasses override) ------------------------------- #

    def _read_cost_us(self, distance):
        raise NotImplementedError

    def _write_cost_us(self, distance):
        raise NotImplementedError

    # -- public I/O ------------------------------------------------------ #

    def read_page(self, page_no):
        """Read one page; returns the charged cost in microseconds."""
        distance = self._check_and_distance(page_no)
        cost = self._read_cost_us(distance)
        self._finish(page_no, cost)
        self.reads += 1
        return cost

    def write_page(self, page_no):
        """Write one page; returns the charged cost in microseconds."""
        distance = self._check_and_distance(page_no)
        cost = self._write_cost_us(distance)
        self._finish(page_no, cost)
        self.writes += 1
        return cost

    # -- internals -------------------------------------------------------- #

    def _check_and_distance(self, page_no):
        if not 0 <= page_no < self.size_pages:
            raise ValueError(
                "page %r out of range [0, %d) on %s"
                % (page_no, self.size_pages, self.name)
            )
        return abs(page_no - self._head)

    def _finish(self, page_no, cost_us):
        self._head = page_no + 1  # a transfer leaves the head after the page
        self.busy_us += cost_us
        self.clock.advance(int(cost_us))

    def reset_counters(self):
        """Zero the I/O counters (head position is preserved)."""
        self.reads = 0
        self.writes = 0
        self.busy_us = 0


class RotationalDisk(Disk):
    """A classic rotational disk: seek + rotational latency + transfer.

    * Seek time follows the usual ``a + b * sqrt(cylinder distance)`` law.
    * Rotational latency is drawn uniformly in [0, one revolution) from the
      device's private RNG — averaging to half a revolution, as on real
      hardware — except for distance <= 1 accesses, which stream without
      re-rotation.
    * Writes acknowledge from the device's write-back cache: they pay the
      transfer plus a fraction of the positioning cost, reproducing the
      paper's observation that amortized writes are cheaper than reads at
      large band sizes because they are asynchronous and schedulable.
    """

    def __init__(
        self,
        clock,
        size_pages,
        page_size=4 * KiB,
        name="hdd",
        rpm=7200,
        seek_min_us=400,
        seek_full_us=9000,
        transfer_mb_per_s=90.0,
        write_positioning_fraction=0.45,
        seed=1234,
    ):
        super().__init__(clock, size_pages, page_size, name)
        self.rpm = rpm
        self._revolution_us = 60.0 * SECOND / rpm  # us per full revolution
        self._seek_min_us = seek_min_us
        self._seek_full_us = seek_full_us
        self._transfer_us = page_size / (transfer_mb_per_s * 1024 * 1024) * SECOND
        self._write_positioning_fraction = write_positioning_fraction
        self._rng = random.Random(seed)

    def _positioning_us(self, distance):
        if distance <= 1:
            return 0.0
        fraction = min(1.0, distance / self.size_pages)
        seek = self._seek_min_us + (
            (self._seek_full_us - self._seek_min_us) * math.sqrt(fraction)
        )
        rotation = self._rng.uniform(0, self._revolution_us)
        return seek + rotation

    def _read_cost_us(self, distance):
        return self._positioning_us(distance) + self._transfer_us

    def _write_cost_us(self, distance):
        positioning = self._positioning_us(distance) * self._write_positioning_fraction
        return positioning + self._transfer_us


class FlashDisk(Disk):
    """Flash / SD-card storage: access time independent of position.

    Figure 3 of the paper ("note the uniform random access times"); writes
    pay an erase-before-write premium.
    """

    def __init__(
        self,
        clock,
        size_pages,
        page_size=4 * KiB,
        name="sdcard",
        read_us=390,
        write_us=1180,
    ):
        super().__init__(clock, size_pages, page_size, name)
        self._read_us = read_us
        self._write_us = write_us

    def _read_cost_us(self, distance):
        return float(self._read_us)

    def _write_cost_us(self, distance):
        return float(self._write_us)


class ModelBackedDisk(Disk):
    """A device whose costs come directly from a DTT model.

    The access *distance* stands in for the DTT band size (clamped to 1
    minimum).  Running the engine on a model-backed disk makes the cost
    model's world and the execution world coincide, which is the cleanest
    configuration for rank-fidelity experiments (paper eq. 3).
    """

    def __init__(self, clock, size_pages, model, page_size=4 * KiB, name="modeled"):
        super().__init__(clock, size_pages, page_size, name)
        self.model = model

    def _band(self, distance):
        return max(1, int(distance))

    def _read_cost_us(self, distance):
        return self.model.cost_us(READ, self.page_size, self._band(distance))

    def _write_cost_us(self, distance):
        return self.model.cost_us(WRITE, self.page_size, self._band(distance))
