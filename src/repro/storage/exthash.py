"""A disk-based extensible hash table (paper Section 2.1).

"For a number of key data structures, SQL Anywhere uses disk-based
implementations to eliminate or reduce the need for limits that would
require tuning ...  long-term locks are stored in a disk-based extensible
hash table, avoiding the need for specifying a lock table size or lock
escalation thresholds."

Classic extensible hashing over buffer-pool pages: a directory of bucket
page numbers doubles as needed; a full bucket splits by local depth.  The
structure grows without any configured capacity, and cold buckets are
ordinary pool pages — evictable to disk like everything else.
"""

from repro.buffer.frames import PageKind
from repro.common.errors import ReproError

#: Entries per bucket page (derived from page size in a real system; a
#: modest constant keeps splits frequent enough to exercise the algorithm).
DEFAULT_BUCKET_CAPACITY = 64


class ExtensibleHashTable:
    """Key/value map on pool pages with directory doubling."""

    def __init__(self, file, pool, bucket_capacity=DEFAULT_BUCKET_CAPACITY,
                 name="exthash"):
        if bucket_capacity < 2:
            raise ValueError("bucket capacity must be at least 2")
        self.file = file
        self.pool = pool
        self.bucket_capacity = bucket_capacity
        self.name = name
        self.global_depth = 0
        first_bucket = self._new_bucket(local_depth=0)
        self._directory = [first_bucket]
        self._count = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def __len__(self):
        return self._count

    @property
    def directory_size(self):
        return len(self._directory)

    @property
    def bucket_pages(self):
        return len(set(self._directory))

    def get(self, key, default=None):
        page_no = self._bucket_for(key)
        frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
        try:
            return frame.payload["entries"].get(key, default)
        finally:
            self.pool.unpin(frame)

    def __contains__(self, key):
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def put(self, key, value):
        """Insert or overwrite; splits buckets (and doubles the directory)
        as needed — there is no capacity to configure."""
        while True:
            page_no = self._bucket_for(key)
            frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
            try:
                entries = frame.payload["entries"]
                if key in entries or len(entries) < self.bucket_capacity:
                    if key not in entries:
                        self._count += 1
                    entries[key] = value
                    return
            finally:
                self.pool.unpin(frame, dirty=True)
            self._split(page_no)

    def remove(self, key):
        """Delete a key; returns its value (raises KeyError if absent)."""
        page_no = self._bucket_for(key)
        frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
        try:
            entries = frame.payload["entries"]
            if key not in entries:
                raise KeyError(key)
            self._count -= 1
            return entries.pop(key)
        finally:
            self.pool.unpin(frame, dirty=True)

    def items(self):
        """Iterate every (key, value) pair (bucket order)."""
        for page_no in sorted(set(self._directory)):
            frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
            try:
                snapshot = list(frame.payload["entries"].items())
            finally:
                self.pool.unpin(frame)
            yield from snapshot

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _bucket_for(self, key):
        index = hash(key) & ((1 << self.global_depth) - 1)
        return self._directory[index]

    def _new_bucket(self, local_depth):
        with self.pool.pin_guard(
            self.pool.new_page(
                self.file, PageKind.TABLE,
                payload={"local_depth": local_depth, "entries": {}},
            ),
            dirty=True,
        ) as frame:
            return frame.page_no

    def _split(self, page_no):
        frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
        try:
            local_depth = frame.payload["local_depth"]
            entries = dict(frame.payload["entries"])
        finally:
            self.pool.unpin(frame)
        if local_depth == self.global_depth:
            # Double the directory.
            self._directory = self._directory + list(self._directory)
            self.global_depth += 1
            if self.global_depth > 32:
                raise ReproError(
                    "extensible hash directory exceeded 2^32 "
                    "(pathological key distribution?)"
                )
        new_depth = local_depth + 1
        sibling = self._new_bucket(new_depth)
        # Re-home directory slots: among the slots pointing at the old
        # bucket, those whose new-depth bit is set move to the sibling.
        bit = 1 << local_depth
        for index, target in enumerate(self._directory):
            if target == page_no and index & bit:
                self._directory[index] = sibling
        # Redistribute the entries between the two buckets.
        stay, move = {}, {}
        for key, value in entries.items():
            if hash(key) & bit:
                move[key] = value
            else:
                stay[key] = value
        frame = self.pool.fetch(self.file, page_no, PageKind.TABLE)
        try:
            frame.payload["local_depth"] = new_depth
            frame.payload["entries"] = stay
        finally:
            self.pool.unpin(frame, dirty=True)
        frame = self.pool.fetch(self.file, sibling, PageKind.TABLE)
        try:
            frame.payload["entries"] = move
        finally:
            self.pool.unpin(frame, dirty=True)
