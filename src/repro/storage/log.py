"""Transaction log (write-ahead logging).

Each database has "a separate transaction log file" (paper Section 1).  The
log is an append-only sequence of records; COMMIT forces the tail to the
device.  Recovery replays committed transactions' redo entries and discards
the rest — enough machinery to exercise crash/restart behaviour in tests,
and to give the buffer pool genuine REDO/UNDO page traffic for its
heterogeneous page mix (Section 2.1).
"""

import collections

from repro.common.errors import TransactionError

#: Log record kinds.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ROLLBACK = "ROLLBACK"
INSERT = "INSERT"
DELETE = "DELETE"
UPDATE = "UPDATE"
CHECKPOINT = "CHECKPOINT"

LogRecord = collections.namedtuple(
    "LogRecord", ["lsn", "txn_id", "kind", "table", "row_id", "before", "after"]
)

#: Log records per log page (controls how often appends charge an I/O).
RECORDS_PER_PAGE = 32


class TransactionLog:
    """Append-only WAL on a paged file."""

    def __init__(self, log_file):
        self._file = log_file
        self._records = []
        self._durable_lsn = -1
        self._active = set()
        self._committed = set()
        self._next_lsn = 0

    @property
    def durable_lsn(self):
        """Highest LSN guaranteed on the device."""
        return self._durable_lsn

    def record_count(self):
        """Total records appended (durable or not)."""
        return len(self._records)

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #

    def begin(self, txn_id):
        if txn_id in self._active:
            raise TransactionError("transaction %r already active" % (txn_id,))
        self._active.add(txn_id)
        return self._append(txn_id, BEGIN, None, None, None, None)

    def log_change(self, txn_id, kind, table, row_id, before=None, after=None):
        """Append a data-change record for an active transaction."""
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        if kind not in (INSERT, DELETE, UPDATE):
            raise TransactionError("unknown change kind %r" % (kind,))
        return self._append(txn_id, kind, table, row_id, before, after)

    def commit(self, txn_id):
        """Append COMMIT and force the log tail to disk."""
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        record = self._append(txn_id, COMMIT, None, None, None, None)
        self._active.discard(txn_id)
        self._committed.add(txn_id)
        self.force()
        return record

    def rollback(self, txn_id):
        """Append ROLLBACK; undo entries are served from :meth:`undo_chain`."""
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        record = self._append(txn_id, ROLLBACK, None, None, None, None)
        self._active.discard(txn_id)
        return record

    def checkpoint(self):
        """Append a checkpoint marker and force the log."""
        record = self._append(None, CHECKPOINT, None, None, None, None)
        self.force()
        return record

    def _append(self, txn_id, kind, table, row_id, before, after):
        record = LogRecord(self._next_lsn, txn_id, kind, table, row_id, before, after)
        self._next_lsn += 1
        self._records.append(record)
        return record

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def force(self):
        """Write all undurable records to the log file (group commit)."""
        first = self._durable_lsn + 1
        last = len(self._records) - 1
        if last < first:
            return 0
        pages_written = 0
        for lsn in range(first, last + 1, RECORDS_PER_PAGE):
            page_no = self._file.allocate_page()
            chunk = self._records[lsn : lsn + RECORDS_PER_PAGE]
            self._file.write(page_no, [tuple(record) for record in chunk])
            pages_written += 1
        self._durable_lsn = last
        return pages_written

    # ------------------------------------------------------------------ #
    # recovery support
    # ------------------------------------------------------------------ #

    def undo_chain(self, txn_id):
        """Data-change records of ``txn_id`` in reverse order (for UNDO)."""
        return [
            record
            for record in reversed(self._records)
            if record.txn_id == txn_id and record.kind in (INSERT, DELETE, UPDATE)
        ]

    def redo_records(self):
        """Durable data changes of committed transactions, in LSN order."""
        committed = {
            record.txn_id
            for record in self._records[: self._durable_lsn + 1]
            if record.kind == COMMIT
        }
        return [
            record
            for record in self._records[: self._durable_lsn + 1]
            if record.kind in (INSERT, DELETE, UPDATE) and record.txn_id in committed
        ]

    def simulate_crash(self):
        """Drop every record past the durable LSN, as a crash would."""
        self._records = self._records[: self._durable_lsn + 1]
        self._next_lsn = len(self._records)
        self._active.clear()
