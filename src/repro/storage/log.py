"""Transaction log (write-ahead logging) with durable page framing.

Each database has "a separate transaction log file" (paper Section 1).
The log is an append-only sequence of records packed into checksummed,
LSN-stamped *log pages*:

``page 0``
    the **master record** — it remembers where the last complete
    checkpoint's BEGIN record lives so restart can start scanning there
    instead of at the head of the log;
``pages 1..n``
    data pages framed as ``{"first_lsn", "records", "checksum"}``.  The
    checksum (CRC-32 over the canonical repr) plus a first-LSN
    continuity check is what lets :meth:`TransactionLog.open` detect a
    *torn tail*: the page a crash interrupted mid-write fails
    validation and is dropped, along with everything after it.

COMMIT forces the tail to the device; the buffer pool's write-ahead
hook forces it again before any dirty data page is written back, so the
volume never holds a page image whose log records are not durable.

Fuzzy checkpoints are a CKPT_BEGIN/CKPT_END record pair: BEGIN carries
the active-transaction list and the dirty-page table, END seals the
pair and republishes the master record.  Restart recovery
(:mod:`repro.recovery.restart`) replays history from the last complete
checkpoint's BEGIN.
"""

import collections
import dataclasses
import zlib

from repro.analysis.races import tap as _race_tap
from repro.common.errors import IOFaultError, TransactionError

#: Log record kinds.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ROLLBACK = "ROLLBACK"
INSERT = "INSERT"
DELETE = "DELETE"
UPDATE = "UPDATE"
CHECKPOINT = "CHECKPOINT"
CKPT_BEGIN = "CKPT_BEGIN"
CKPT_END = "CKPT_END"

LogRecord = collections.namedtuple(
    "LogRecord", ["lsn", "txn_id", "kind", "table", "row_id", "before", "after"]
)

#: Log records per log page (controls how often appends charge an I/O).
RECORDS_PER_PAGE = 32

# --------------------------------------------------------------------- #
# crash-hook sites (consumed by repro.recovery.harness.CrashHarness)
# --------------------------------------------------------------------- #

CRASH_APPEND = "wal.append"
CRASH_COMMIT_EARLY = "wal.commit_before_force"
CRASH_COMMIT_LATE = "wal.commit_after_force"
CRASH_FORCE_PAGE = "wal.force_page"
CRASH_CKPT_MID = "wal.checkpoint_mid"
#: Fires per page only when the force was issued by the group-commit
#: coordinator — a kill here lands mid-batch, with some sessions' COMMIT
#: records durable and others torn away.
CRASH_GROUP_FORCE = "wal.group_force"

CRASH_SITES = (
    CRASH_APPEND, CRASH_COMMIT_EARLY, CRASH_COMMIT_LATE, CRASH_FORCE_PAGE,
    CRASH_CKPT_MID, CRASH_GROUP_FORCE,
)


def _page_checksum(first_lsn, records):
    """CRC-32 over the canonical text form of a log page's contents."""
    return zlib.crc32(
        repr((first_lsn, records)).encode("utf-8", "backslashreplace")
    )


def _frame_page(first_lsn, records):
    return {
        "first_lsn": first_lsn,
        "records": records,
        "checksum": _page_checksum(first_lsn, records),
    }


def _validate_page(payload, expected_first_lsn):
    """Whether ``payload`` is a well-formed log page continuing the scan.

    ``expected_first_lsn`` of ``None`` accepts any starting LSN (the
    first page of a from-checkpoint scan).
    """
    if not isinstance(payload, dict):
        return False
    try:
        first_lsn = payload["first_lsn"]
        records = payload["records"]
        checksum = payload["checksum"]
    except KeyError:
        return False
    if not isinstance(records, list) or not records:
        return False
    if expected_first_lsn is not None and first_lsn != expected_first_lsn:
        return False
    return _page_checksum(first_lsn, records) == checksum


class TransactionLog:
    """An append-only WAL on a paged file, recoverable after a crash."""

    def __init__(self, log_file, metrics=None, fault_plan=None):
        self._file = log_file
        self._records = []
        #: LSN of ``self._records[0]`` — non-zero after a from-checkpoint
        #: :meth:`open` (the scan does not load pre-checkpoint history).
        self._base_lsn = 0
        self._durable_lsn = -1
        self._active = set()
        self._committed = set()
        self._next_lsn = 0
        #: Next data page to write; pages past a torn tail are rewritten.
        self._next_page = 1
        #: ``(page_no, first_lsn)`` of every durable data page, in order.
        self._page_index = []
        #: CKPT_BEGIN record of the last *complete* checkpoint, if any.
        self.last_checkpoint = None
        self.last_checkpoint_end_lsn = -1
        self._pending_ckpt_begin = None
        #: Data pages discarded by torn-tail detection at the last open.
        self.torn_pages_dropped = 0
        self.fault_plan = fault_plan
        #: CrashHarness hook: ``fn(site)`` called at each CRASH_* site;
        #: raising from it simulates the process dying right there.
        self.crash_hook = None
        #: Replication stream taps: ``fn(page_no, first_lsn, payload)``
        #: called once per data page the instant it becomes durable.
        #: Taps must never raise — the durable LSN has already advanced,
        #: so a tap failure must not be able to unwind a local commit
        #: (the synchronous-replication ack gate lives in the group
        #: commit coordinator instead, see ``GroupCommitCoordinator``).
        self.stream_taps = []
        self._m_forces = None
        self._m_pages = None
        self._m_force_retries = None
        self._m_torn = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, registry):
        """Publish ``wal.*`` counters (idempotent across log reopen)."""
        self._m_forces = registry.counter("wal.forces")
        self._m_pages = registry.counter("wal.pages_written")
        self._m_force_retries = registry.counter("wal.force_retries")
        self._m_torn = registry.counter("wal.torn_pages_dropped")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def durable_lsn(self):
        """Highest LSN guaranteed on the device."""
        return self._durable_lsn

    @property
    def base_lsn(self):
        """LSN of the first loaded record (non-zero after a
        from-checkpoint :meth:`open` — the window is partial history)."""
        return self._base_lsn

    def record_count(self):
        """Total records appended over the log's lifetime (durable or not)."""
        return self._next_lsn

    def peek_next_lsn(self):
        """The LSN the next append will receive (no side effects).

        The engine stamps a data page with this value *before* applying a
        change, then appends the matching record — so a page's LSN always
        covers every record that touched it.
        """
        return self._next_lsn

    def active_txns(self):
        """Transactions with a BEGIN but no COMMIT/ROLLBACK (losers,
        when read after :meth:`open`)."""
        return set(self._active)

    def committed_txns(self):
        return set(self._committed)

    def records_since_checkpoint(self):
        """Records appended after the last complete checkpoint's END —
        the governor's measure of how much log a restart must replay."""
        return self._next_lsn - (self.last_checkpoint_end_lsn + 1)

    def loaded_records(self):
        """The in-memory record window (full history unless the log was
        opened from a checkpoint)."""
        return list(self._records)

    def records_from(self, lsn):
        """Loaded records with ``record.lsn >= lsn``, in LSN order."""
        start = max(0, lsn - self._base_lsn)
        return self._records[start:]

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #

    def begin(self, txn_id):
        if txn_id in self._active:
            raise TransactionError("transaction %r already active" % (txn_id,))
        self._active.add(txn_id)
        return self._append(txn_id, BEGIN, None, None, None, None)

    def log_change(self, txn_id, kind, table, row_id, before=None, after=None):
        """Append a data-change record for an active transaction."""
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        if kind not in (INSERT, DELETE, UPDATE):
            raise TransactionError("unknown change kind %r" % (kind,))
        self._crash_point(CRASH_APPEND)
        return self._append(txn_id, kind, table, row_id, before, after)

    def commit(self, txn_id):
        """Append COMMIT and force the log tail to disk.

        The transaction only counts as committed once the force
        succeeds; a failed force leaves it active so the commit can be
        retried (a later COMMIT record for the same transaction is
        harmless to recovery).

        Group commit decomposes this into :meth:`append_commit` →
        ``force`` (one shared force per batch) → :meth:`finish_commit`;
        this method keeps the one-transaction path, with an identical
        crash-site sequence.
        """
        record = self.append_commit(txn_id)
        self.force()
        self.finish_commit(txn_id)
        return record

    def append_commit(self, txn_id):
        """First half of a commit: the COMMIT record enters the tail.

        The transaction is *not* yet committed — its record is volatile
        until a force covers it and :meth:`finish_commit` runs.
        """
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        record = self._append(txn_id, COMMIT, None, None, None, None)
        self._crash_point(CRASH_COMMIT_EARLY)
        return record

    def finish_commit(self, txn_id):
        """Second half: bookkeeping once the COMMIT record is durable."""
        self._active.discard(txn_id)
        self._committed.add(txn_id)
        self._crash_point(CRASH_COMMIT_LATE)

    def rollback(self, txn_id):
        """Append ROLLBACK; undo entries are served from :meth:`undo_chain`."""
        if txn_id not in self._active:
            raise TransactionError("transaction %r is not active" % (txn_id,))
        record = self._append(txn_id, ROLLBACK, None, None, None, None)
        self._active.discard(txn_id)
        return record

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #

    def checkpoint_begin(self, active_txns, dirty_page_table):
        """Open a fuzzy checkpoint: durable BEGIN carrying the snapshots.

        ``dirty_page_table`` is ``{(file_id, page_no): rec_lsn}`` from
        the buffer pool; it travels in the record (sorted, for
        deterministic page images).
        """
        snapshot = {
            "active": sorted(active_txns),
            "dpt": sorted(
                (file_id, page_no, rec_lsn)
                for (file_id, page_no), rec_lsn in dirty_page_table.items()
            ),
        }
        record = self._append(None, CKPT_BEGIN, None, None, None, snapshot)
        self._pending_ckpt_begin = record
        self.force()
        return record

    def checkpoint_end(self, begin_record):
        """Seal the checkpoint and republish the master record."""
        record = self._append(
            None, CKPT_END, None, None, None,
            {"begin_lsn": begin_record.lsn},
        )
        self.force()
        self.last_checkpoint = begin_record
        self.last_checkpoint_end_lsn = record.lsn
        self._pending_ckpt_begin = None
        self._write_master(begin_record.lsn)
        return record

    def checkpoint(self):
        """Convenience: an empty fuzzy checkpoint (no snapshots)."""
        begin = self.checkpoint_begin((), {})
        return self.checkpoint_end(begin)

    def _write_master(self, ckpt_begin_lsn):
        ckpt_page = self._page_for_lsn(ckpt_begin_lsn)
        if ckpt_page is None:
            return
        self._ensure_master_page()
        self._write_log_page(0, {
            "kind": "master",
            "ckpt_begin_lsn": ckpt_begin_lsn,
            "ckpt_page": ckpt_page,
            "checksum": zlib.crc32(
                repr((ckpt_begin_lsn, ckpt_page)).encode("utf-8")
            ),
        })

    def _page_for_lsn(self, lsn):
        """The durable data page holding ``lsn``, or None."""
        found = None
        for page_no, first_lsn in self._page_index:
            if first_lsn <= lsn:
                found = page_no
            else:
                break
        return found

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _append(self, txn_id, kind, table, row_id, before, after):
        record = LogRecord(self._next_lsn, txn_id, kind, table, row_id, before, after)
        self._next_lsn += 1
        self._records.append(record)
        return record

    def _crash_point(self, site):
        if self.crash_hook is not None:
            self.crash_hook(site)

    def crash_point(self, site):
        """Public crash-site trigger (the server fires CRASH_CKPT_MID)."""
        self._crash_point(site)

    def _ensure_master_page(self):
        if self._file.page_count == 0:
            page_no = self._file.allocate_page()
            self._file.write(page_no, {
                "kind": "master",
                "ckpt_begin_lsn": -1,
                "ckpt_page": -1,
                "checksum": zlib.crc32(repr((-1, -1)).encode("utf-8")),
            })

    def _allocate_data_page(self):
        """Next data page number: reuse the slots past a torn tail before
        growing the file, keeping page order equal to LSN order."""
        if self._next_page < self._file.page_count:
            page_no = self._next_page
        else:
            page_no = self._file.allocate_page()
        self._next_page += 1
        return page_no

    def _write_log_page(self, page_no, payload):
        """One log-device write, with its own injected-fault site.

        ``wal.force_error`` models the log device specifically (distinct
        from the generic disk-fault sites, which also fire here through
        the FaultyDisk wrapper).  Failed attempts burn bounded
        exponential backoff on the simulated clock; an exhausted budget
        surfaces as :class:`IOFaultError` and aborts only the statement
        whose commit (or eviction) forced the log.
        """
        from repro.faults.plan import LOG_FORCE_ERROR

        plan = self.fault_plan
        attempt = 0
        while plan is not None and plan.should(
            LOG_FORCE_ERROR, plan.rates.log_force_error
        ):
            plan.record(LOG_FORCE_ERROR, "page=%d" % (page_no,))
            attempt += 1
            if attempt > plan.rates.io_retry_limit:
                raise IOFaultError(
                    "log page %d still failing after %d retries"
                    % (page_no, plan.rates.io_retry_limit)
                )
            plan.note_retry(LOG_FORCE_ERROR)
            if self._m_force_retries is not None:
                self._m_force_retries.inc()
            self._file.volume.disk.clock.advance(
                int(plan.rates.io_retry_backoff_us * (2 ** (attempt - 1)))
            )
        self._file.write(page_no, payload)

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def force(self, extra_site=None):
        """Write all undurable records to the log file.

        The durable LSN advances page by page, so a crash mid-force
        loses only the pages not yet written.  ``extra_site`` names an
        additional crash site fired per page (the coordinator passes
        ``CRASH_GROUP_FORCE`` so the harness can kill inside a *batched*
        force specifically).
        """
        first = self._durable_lsn + 1
        last = self._base_lsn + len(self._records) - 1
        if last < first:
            return 0
        self._ensure_master_page()
        pages_written = 0
        for lsn in range(first, last + 1, RECORDS_PER_PAGE):
            chunk = self._records[
                lsn - self._base_lsn : lsn - self._base_lsn + RECORDS_PER_PAGE
            ]
            self._crash_point(CRASH_FORCE_PAGE)
            if extra_site is not None:
                self._crash_point(extra_site)
            page_no = self._allocate_data_page()
            payload = _frame_page(lsn, [tuple(record) for record in chunk])
            self._write_log_page(page_no, payload)
            self._page_index.append((page_no, lsn))
            self._durable_lsn = lsn + len(chunk) - 1
            pages_written += 1
            for tap in self.stream_taps:
                tap(page_no, lsn, payload)
        if self._m_forces is not None:
            self._m_forces.inc()
            self._m_pages.inc(pages_written)
        return pages_written

    # ------------------------------------------------------------------ #
    # restart: reading the durable log back
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, log_file, metrics=None, fault_plan=None, full_scan=False):
        """Rebuild a log object from the durable pages of ``log_file``.

        Scans data pages in order (each read charges device time — this
        is the log-scan half of restart cost), validating structure,
        checksum, and first-LSN continuity.  The first invalid page is a
        torn tail: it and everything after it are dropped and will be
        overwritten by future forces.  Unless ``full_scan`` is set, the
        scan starts at the master record's checkpoint page and the
        reconstructed log holds only post-checkpoint history.
        """
        log = cls(log_file, metrics=metrics, fault_plan=fault_plan)
        if log_file.page_count == 0:
            return log
        start_page, master_lsn = 1, None
        if not full_scan:
            master = log_file.read(0)
            if (
                isinstance(master, dict)
                and master.get("kind") == "master"
                and master.get("ckpt_page", -1) >= 1
                and master.get("checksum") == zlib.crc32(
                    repr(
                        (master.get("ckpt_begin_lsn"), master.get("ckpt_page"))
                    ).encode("utf-8")
                )
            ):
                start_page, master_lsn = master["ckpt_page"], master["ckpt_begin_lsn"]
        expected_lsn = 0 if start_page == 1 else None
        scanned_any = False
        for page_no in range(start_page, log_file.page_count):
            payload = log_file.read(page_no)
            if not _validate_page(payload, expected_lsn):
                dropped = log_file.page_count - page_no
                log.torn_pages_dropped = dropped
                if log._m_torn is not None:
                    log._m_torn.inc(dropped)
                if not scanned_any and start_page > 1:
                    # The master pointed into the torn region: the
                    # checkpoint cannot be trusted, rescan everything.
                    return cls.open(
                        log_file, metrics=metrics, fault_plan=fault_plan,
                        full_scan=True,
                    )
                break
            if not scanned_any:
                log._base_lsn = payload["first_lsn"]
                log._next_lsn = payload["first_lsn"]
                scanned_any = True
            for raw in payload["records"]:
                log._admit(LogRecord(*raw))
            log._page_index.append((page_no, payload["first_lsn"]))
            expected_lsn = payload["first_lsn"] + len(payload["records"])
            log._next_page = page_no + 1
        log._durable_lsn = log._next_lsn - 1
        if master_lsn is not None and (
            log.last_checkpoint is None or log.last_checkpoint.lsn != master_lsn
        ):
            # The master named a checkpoint the scan could not confirm
            # complete (e.g. END fell in the torn tail): rescan from the
            # head so no pre-checkpoint history is missing.
            if not full_scan:
                return cls.open(
                    log_file, metrics=metrics, fault_plan=fault_plan,
                    full_scan=True,
                )
        return log

    def _admit(self, record):
        """Replay one scanned record into the in-memory bookkeeping."""
        self._records.append(record)
        self._next_lsn = record.lsn + 1
        if record.kind == BEGIN:
            self._active.add(record.txn_id)
        elif record.kind == COMMIT:
            self._active.discard(record.txn_id)
            self._committed.add(record.txn_id)
        elif record.kind == ROLLBACK:
            # A ROLLBACK after a COMMIT happens when the commit's force
            # failed and the statement gave up: the compensations that
            # precede the ROLLBACK make redo-all-history correct, but the
            # transaction must not be reported as committed.
            self._active.discard(record.txn_id)
            self._committed.discard(record.txn_id)
        elif record.kind == CKPT_BEGIN:
            self._active.update(record.after["active"])
            self._pending_ckpt_begin = record
        elif record.kind == CKPT_END:
            pending = self._pending_ckpt_begin
            if pending is not None and pending.lsn == record.after["begin_lsn"]:
                self.last_checkpoint = pending
                self.last_checkpoint_end_lsn = record.lsn
            self._pending_ckpt_begin = None

    def tear_inflight_page(self):
        """Write the half-finished page of the force the crash interrupted.

        Log pages are written once and never rewritten, so the only page
        a crash can tear is the one being written at the instant of
        death — and its records were, by definition, never acknowledged
        durable.  The next free data-page slot receives an image with a
        bad checksum (the write never completed); :meth:`open` drops it
        and the slot is reused.  Mutates the volume's payload store
        directly (no device time — the damage happened *during* the
        crash).
        """
        first = self._durable_lsn + 1
        chunk = self._records[
            first - self._base_lsn : first - self._base_lsn + RECORDS_PER_PAGE
        ]
        image = _frame_page(
            first, [tuple(record) for record in chunk] or [("inflight",)]
        )
        image["checksum"] ^= 0x5A5A5A5A
        self._ensure_master_page()
        page_no = self._allocate_data_page()
        self._file.volume._store[self._file.global_page(page_no)] = image
        return True

    def tear_last_page(self):
        """Corrupt the last durable data page, as a lying device (write
        acknowledged before it was stable) would: drop its final record
        but keep the stale checksum.

        Mutates the volume's payload store directly (no device time — the
        damage happened *during* the crash).  :meth:`open` will detect
        and drop the page.
        """
        if not self._page_index:
            return False
        page_no, first_lsn = self._page_index[-1]
        store = self._file.volume
        image = store.peek_payload(self._file.global_page(page_no))
        if not isinstance(image, dict):
            return False
        torn = dict(image)
        if len(torn.get("records", [])) > 1:
            torn["records"] = torn["records"][:-1]  # checksum now stale
        else:
            torn["checksum"] = torn.get("checksum", 0) ^ 0x5A5A5A5A
        store._store[self._file.global_page(page_no)] = torn
        return True

    # ------------------------------------------------------------------ #
    # recovery support
    # ------------------------------------------------------------------ #

    def undo_chain(self, txn_id):
        """Data-change records of ``txn_id`` in reverse order (for UNDO)."""
        return [
            record
            for record in reversed(self._records)
            if record.txn_id == txn_id and record.kind in (INSERT, DELETE, UPDATE)
        ]

    def redo_records(self):
        """Durable data changes of committed transactions, in LSN order."""
        durable = self._records[: self._durable_lsn + 1 - self._base_lsn]
        committed = {
            record.txn_id for record in durable if record.kind == COMMIT
        }
        return [
            record
            for record in durable
            if record.kind in (INSERT, DELETE, UPDATE)
            and record.txn_id in committed
        ]

    def simulate_crash(self):
        """Drop every record past the durable LSN, as a crash would."""
        self._records = self._records[: self._durable_lsn + 1 - self._base_lsn]
        self._next_lsn = self._base_lsn + len(self._records)
        self._active.clear()


# --------------------------------------------------------------------- #
# group commit
# --------------------------------------------------------------------- #


@dataclasses.dataclass
class GroupCommitConfig:
    """Tunables for the adaptive group-commit coordinator."""

    enabled: bool = True
    #: Latency ceiling: a commit never waits longer than this for
    #: companions, regardless of what the tuner wants.
    max_window_us: int = 2_000
    #: Flush as soon as this many commits are pending (window or not).
    target_batch: int = 8
    #: Damping factors for the window retune (the paper's eq. 2 idiom,
    #: shared with the buffer and checkpoint governors).
    damping_new: float = 0.9
    damping_old: float = 0.1
    #: Mean commit inter-arrival gap at or above which the system counts
    #: as idle: the window collapses toward zero and commits force
    #: immediately (no latency tax on a quiet server).
    idle_threshold_us: int = 5_000
    #: Inter-arrival gaps remembered for the rate estimate.
    arrival_history: int = 16


class CommitTicket:
    """One session's pending commit, from enqueue to durable ack."""

    __slots__ = ("txn_id", "lsn", "enqueued_at_us", "durable")

    def __init__(self, txn_id, lsn, enqueued_at_us):
        self.txn_id = txn_id
        self.lsn = lsn
        self.enqueued_at_us = enqueued_at_us
        self.durable = False

    def __repr__(self):
        return "CommitTicket(txn=%r, lsn=%d, durable=%r)" % (
            self.txn_id, self.lsn, self.durable
        )


class GroupCommitCoordinator:
    """Coalesces concurrent commits into shared log forces.

    A committing session appends its COMMIT record, takes a
    :class:`CommitTicket`, and — when other sessions are runnable —
    parks in the scheduler until a single :meth:`flush` forces the tail
    for the whole batch.  The flush window self-tunes from the observed
    commit-arrival rate with the paper's damped-feedback equation: an
    idle system collapses the window to zero (force immediately, no
    latency tax), a bursty one widens it toward
    ``mean_gap * (target_batch - 1)`` capped at ``max_window_us``.

    Without a scheduler (single-connection workloads, recovery, bulk
    load) every commit flushes inline, preserving the classic
    force-per-commit sequence byte for byte.

    The ack invariant — enforced under ``REPRO_SANITIZE=1`` — is that
    :meth:`commit` returns only after the log's durable LSN covers the
    ticket: no acknowledged commit can be lost by a crash, and no
    unacknowledged one is ever reported durable.
    """

    def __init__(self, log_fn, clock, config=None, metrics=None,
                 scheduler_fn=None, sanitize=False):
        self._log_fn = log_fn
        self._clock = clock
        self.config = config if config is not None else GroupCommitConfig()
        self._scheduler_fn = scheduler_fn
        self.sanitize = bool(sanitize)
        self.races = None  # RaceSanitizer, attached by the server
        #: LogStreamPublisher when this server replicates synchronously:
        #: a ticket settles only once its LSN is both locally durable
        #: *and* durably received by at least one replica, so no acked
        #: commit can be lost to a primary failure.
        self.replication = None
        self._pending = []
        self._arrival_gaps = collections.deque(
            maxlen=max(2, self.config.arrival_history)
        )
        self._last_arrival_us = None
        #: Current tuned flush window; starts at zero (idle behaviour)
        #: and only widens once arrivals prove the system is bursty.
        self.window_us = 0
        self.batches = 0
        self.committed = 0
        self._m_batches = None
        self._m_batch_size = None
        self._m_latency = None
        if metrics is not None:
            self._m_batches = metrics.counter("wal.group_commit.batches")
            self._m_batch_size = metrics.histogram(
                "wal.group_commit.batch_size"
            )
            self._m_latency = metrics.histogram("txn.commit_latency_us")
            metrics.register_probe(
                "wal.group_commit.window_us", lambda: self.window_us
            )
            metrics.register_probe(
                "wal.group_commit.pending", lambda: len(self._pending)
            )

    # ------------------------------------------------------------------ #
    # the commit path
    # ------------------------------------------------------------------ #

    def commit(self, txn_id):
        """Commit ``txn_id`` through the group: returns once durable."""
        log = self._log_fn()
        record = log.append_commit(txn_id)
        ticket = CommitTicket(txn_id, record.lsn, self._clock.now)
        self._observe_arrival()
        with _race_tap(self.races, "group_commit", "tickets", "w"):
            self._pending.append(ticket)
        scheduler = (
            self._scheduler_fn() if self._scheduler_fn is not None else None
        )
        try:
            # Group commit *requires* the straddle: the ticket is
            # published to _pending precisely so a sibling's force (or
            # the window park below) can settle it while we are off the
            # baton; the except arm unpublishes it on failure.
            if (
                not self.config.enabled
                or self.window_us <= 0
                or len(self._pending) >= self.config.target_batch
                or scheduler is None
                or not scheduler.commit_can_wait()
            ):
                self.flush()  # noqa: SIM011
            else:
                scheduler.wait_for_commit(ticket, self)  # noqa: SIM011
                if not ticket.durable:
                    self.flush()  # noqa: SIM011
        except BaseException:
            # The force died under us (injected I/O fault) or the session
            # was torn down: the commit did not happen, so the ticket
            # must not linger to be "committed" by a later batch.
            with _race_tap(self.races, "group_commit", "tickets", "w"):
                self._pending = [t for t in self._pending if t is not ticket]
            raise
        if self.sanitize:
            self._assert_acked(log, ticket)
        if self._m_latency is not None:
            self._m_latency.observe(self._clock.now - ticket.enqueued_at_us)
        return ticket

    def flush(self):
        """Force the tail once and settle every covered pending ticket."""
        log = self._log_fn()
        if not self._pending:
            return 0
        try:
            log.force(extra_site=CRASH_GROUP_FORCE)
        except BaseException:
            # A partial force may still have covered some tickets (the
            # durable LSN advances page by page): settle those so their
            # sessions can ack, and leave the rest pending for a retry.
            # A replication-ship failure here must not mask the force
            # error — leaving tickets pending is always safe.
            try:
                self._settle(log)
            except IOFaultError:
                # Only the sync replication ship inside _settle raises
                # this; count it so the absorbed fault stays visible.
                if self.replication is not None:
                    self.replication.record_fault()
            raise
        return self._settle(log)

    def _settle(self, log):
        durable = log.durable_lsn
        if self.replication is not None:
            # Synchronous ship: retransmit until every locally durable
            # page is on at least one replica (or the bounded retry
            # budget dies, degrading this commit statement only).
            durable = min(durable, self.replication.ensure_acked(durable))
        with _race_tap(self.races, "group_commit", "tickets", "w"):
            done = [t for t in self._pending if t.lsn <= durable]
            self._pending = [t for t in self._pending if t.lsn > durable]
        for ticket in done:
            log.finish_commit(ticket.txn_id)
            ticket.durable = True
        if done:
            self.batches += 1
            self.committed += len(done)
            if self._m_batches is not None:
                self._m_batches.inc()
                self._m_batch_size.observe(len(done))
        return len(done)

    # ------------------------------------------------------------------ #
    # scheduling surface
    # ------------------------------------------------------------------ #

    def pending_count(self):
        return len(self._pending)

    def pending_tickets(self):
        """Snapshot of the not-yet-durable tickets (crash adjudication)."""
        return list(self._pending)

    def deadline_us(self):
        """When the oldest pending commit's window expires (None: empty)."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at_us + self.window_us

    def reset(self):
        """Drop pending tickets (their sessions died with the process)."""
        self._pending = []
        self._last_arrival_us = None

    # ------------------------------------------------------------------ #
    # window tuning
    # ------------------------------------------------------------------ #

    def _observe_arrival(self):
        now = self._clock.now
        if self._last_arrival_us is not None:
            self._arrival_gaps.append(now - self._last_arrival_us)
        self._last_arrival_us = now
        self._retune()

    def _retune(self):
        if not self._arrival_gaps:
            return
        cfg = self.config
        mean_gap = sum(self._arrival_gaps) / len(self._arrival_gaps)
        if mean_gap >= cfg.idle_threshold_us:
            ideal = 0.0
        else:
            ideal = min(
                float(cfg.max_window_us),
                mean_gap * max(1, cfg.target_batch - 1),
            )
        self.window_us = int(
            cfg.damping_new * ideal + cfg.damping_old * self.window_us
        )

    # ------------------------------------------------------------------ #
    # sanitizer hook
    # ------------------------------------------------------------------ #

    def _assert_acked(self, log, ticket):
        if ticket.durable and ticket.lsn <= log.durable_lsn:
            return
        from repro.analysis.sanitizers import GroupCommitInvariantError

        raise GroupCommitInvariantError(
            "commit ack for txn %r at LSN %d before durable LSN %d covered it"
            % (ticket.txn_id, ticket.lsn, log.durable_lsn)
        )
