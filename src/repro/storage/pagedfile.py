"""Volumes and paged files.

A :class:`Volume` owns one simulated disk and parcels it out to named
:class:`PagedFile` objects in contiguous *extents*, so that pages allocated
consecutively by one file are (mostly) physically adjacent — which is what
gives table scans their sequential-access advantage under the DTT cost
model.  Page *contents* are arbitrary Python payloads held by the volume;
the devices only charge time, they do not store bytes.
"""

import collections

from repro.common.errors import IOFaultError, ReproError, TransientIOError

#: Pages per extent.  Small enough that tiny files stay compact, large
#: enough that scans of one file are dominated by sequential transfers.
EXTENT_PAGES = 64

#: Bounded retry budget for transient device faults, and the base of the
#: exponential backoff charged to the simulated clock between attempts.
#: Used when the volume's disk carries no fault plan (and therefore no
#: per-plan budgets) — the wrapper-free case never retries anyway.
IO_RETRY_LIMIT = 5
IO_RETRY_BACKOFF_US = 100

PageAddress = collections.namedtuple("PageAddress", ["file_id", "page_no"])


def _copy_payload(value):
    """Structural copy of a page payload (containers only).

    The volume's payload store is the *durable* page image; buffer-pool
    frames mutate payloads in place.  Copying on both read and write is
    what keeps the two worlds separate — without it, an in-memory slot
    update would silently become durable with no writeback, and crash
    recovery would have nothing to recover.  Scalars (and engine value
    objects like RowId, which are never mutated) are shared.
    """
    if isinstance(value, dict):
        return {key: _copy_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_payload(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_copy_payload(item) for item in value)
    if isinstance(value, set):
        return {_copy_payload(item) for item in value}
    return value


class Volume:
    """A disk device plus an extent allocator and the page payload store."""

    def __init__(self, disk):
        self.disk = disk
        self._store = {}  # global page number -> payload
        self._next_free = 0
        self._free_extents = []
        self._files = {}
        self._next_file_id = 0

    # ------------------------------------------------------------------ #
    # file management
    # ------------------------------------------------------------------ #

    def create_file(self, name):
        """Create a new empty :class:`PagedFile` on this volume."""
        file_id = self._next_file_id
        self._next_file_id += 1
        pfile = PagedFile(self, file_id, name)
        self._files[file_id] = pfile
        return pfile

    def file(self, file_id):
        """Look up a file by id."""
        return self._files[file_id]

    def files(self):
        """All files on the volume."""
        return list(self._files.values())

    # ------------------------------------------------------------------ #
    # extent allocation
    # ------------------------------------------------------------------ #

    def allocate_extent(self):
        """Reserve :data:`EXTENT_PAGES` contiguous global pages."""
        if self._free_extents:
            return self._free_extents.pop()
        start = self._next_free
        if start + EXTENT_PAGES > self.disk.size_pages:
            raise ReproError(
                "volume full: %d pages used of %d"
                % (self._next_free, self.disk.size_pages)
            )
        self._next_free += EXTENT_PAGES
        return start

    def release_extent(self, start):
        """Return an extent to the free list."""
        self._free_extents.append(start)

    def used_pages(self):
        """Pages currently reserved by extents (upper bound on usage)."""
        return self._next_free - len(self._free_extents) * EXTENT_PAGES

    # ------------------------------------------------------------------ #
    # raw page I/O (charges device time)
    # ------------------------------------------------------------------ #

    def read_payload(self, global_page):
        """Read a page's payload from the device, charging transfer time.

        Transient device faults are retried with bounded exponential
        backoff; persistent failure surfaces as :class:`IOFaultError`.
        """
        self._faulted_io(self.disk.read_page, global_page)
        return _copy_payload(self._store.get(global_page))

    def write_payload(self, global_page, payload):
        """Write a page's payload to the device, charging transfer time.

        Same bounded retry-with-backoff discipline as reads.  The payload
        store is only updated once the device accepts the transfer, so a
        failed write leaves the old page image intact.
        """
        self._faulted_io(self.disk.write_page, global_page)
        self._store[global_page] = _copy_payload(payload)

    def _faulted_io(self, op, global_page):
        """Run one device transfer, riding out transient injected faults.

        Each retry charges exponentially growing backoff to the simulated
        clock (the engine "waits" for the device to recover).  After the
        budget is spent the fault is re-typed as :class:`IOFaultError`,
        which aborts only the statement that owns this I/O.
        """
        plan = getattr(self.disk, "plan", None)
        if plan is not None:
            limit = plan.rates.io_retry_limit
            backoff_us = plan.rates.io_retry_backoff_us
        else:
            limit = IO_RETRY_LIMIT
            backoff_us = IO_RETRY_BACKOFF_US
        attempt = 0
        while True:
            try:
                return op(global_page)
            except TransientIOError as exc:
                attempt += 1
                if attempt > limit:
                    raise IOFaultError(
                        "page %d still failing after %d retries (%s)"
                        % (global_page, limit, exc)
                    ) from exc
                if plan is not None:
                    plan.note_retry(exc.site)
                self.disk.clock.advance(int(backoff_us * (2 ** (attempt - 1))))

    def peek_payload(self, global_page):
        """Read a payload *without* charging I/O (test/diagnostic use)."""
        return self._store.get(global_page)


class PagedFile:
    """A named, growable collection of pages mapped onto volume extents.

    Page numbers are file-local and dense from zero.  The engine's "main
    database file", the temporary file, and each dbspace are PagedFiles.
    """

    def __init__(self, volume, file_id, name):
        self.volume = volume
        self.file_id = file_id
        self.name = name
        self._extents = []  # index e holds global start of file pages [e*E, ...)
        self._page_count = 0
        self._free_pages = []

    @property
    def page_count(self):
        """Number of allocated (live) pages in the file."""
        return self._page_count - len(self._free_pages)

    @property
    def size_bytes(self):
        """Logical file size in bytes."""
        return self.page_count * self.volume.disk.page_size

    def allocate_page(self):
        """Allocate a page, reusing freed slots before growing the file."""
        if self._free_pages:
            return self._free_pages.pop()
        page_no = self._page_count
        extent_index = page_no // EXTENT_PAGES
        if extent_index >= len(self._extents):
            self._extents.append(self.volume.allocate_extent())
        self._page_count += 1
        return page_no

    def free_page(self, page_no):
        """Mark a page free for reuse by this file."""
        self._check(page_no)
        self._free_pages.append(page_no)

    def truncate(self):
        """Drop every page, returning extents to the volume."""
        for start in self._extents:
            self.volume.release_extent(start)
        self._extents = []
        self._page_count = 0
        self._free_pages = []

    def global_page(self, page_no):
        """Translate a file-local page number to a volume page number."""
        self._check(page_no)
        extent_index, offset = divmod(page_no, EXTENT_PAGES)
        return self._extents[extent_index] + offset

    def read(self, page_no):
        """Read a page payload (charges device time)."""
        return self.volume.read_payload(self.global_page(page_no))

    def write(self, page_no, payload):
        """Write a page payload (charges device time)."""
        self.volume.write_payload(self.global_page(page_no), payload)

    def address(self, page_no):
        """The :class:`PageAddress` of a file-local page."""
        self._check(page_no)
        return PageAddress(self.file_id, page_no)

    def _check(self, page_no):
        if not 0 <= page_no < self._page_count:
            raise ValueError(
                "page %r out of range for file %r (%d pages)"
                % (page_no, self.name, self._page_count)
            )

    def __repr__(self):
        return "PagedFile(name=%r, pages=%d)" % (self.name, self.page_count)
