"""Row storage: tables as slotted pages in a paged file, via the pool.

Rows are Python tuples.  Each table page holds a fixed number of row slots
derived from the schema's estimated row width, so table size in pages —
which both the cost model and the buffer governor's soft cap (eq. 1)
consume — scales realistically with row count and row width.
"""

from repro.buffer.frames import PageKind
from repro.common.errors import ExecutionError


class RowId:
    """Physical row address: (page ordinal within table, slot)."""

    __slots__ = ("page_ordinal", "slot")

    def __init__(self, page_ordinal, slot):
        self.page_ordinal = page_ordinal
        self.slot = slot

    def __eq__(self, other):
        return (
            isinstance(other, RowId)
            and self.page_ordinal == other.page_ordinal
            and self.slot == other.slot
        )

    def __hash__(self):
        return hash((self.page_ordinal, self.slot))

    def __lt__(self, other):
        return (self.page_ordinal, self.slot) < (other.page_ordinal, other.slot)

    def __repr__(self):
        return "RowId(%d,%d)" % (self.page_ordinal, self.slot)


class TableStorage:
    """Heap-file storage for one table."""

    def __init__(self, schema, file, pool, page_kind=PageKind.TABLE):
        self.schema = schema
        self.file = file
        self.pool = pool
        self.page_kind = page_kind
        self.rows_per_page = max(
            1, pool.page_size // max(1, schema.row_bytes())
        )
        self._page_numbers = []  # ordinal -> file page number
        self._pages_with_space = []  # ordinals that have free slots
        self.row_count = 0

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #

    @property
    def page_count(self):
        return len(self._page_numbers)

    def size_bytes(self):
        return self.page_count * self.pool.page_size

    def page_numbers(self):
        return list(self._page_numbers)

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    def insert(self, row):
        """Append a row; returns its :class:`RowId`."""
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise ExecutionError(
                "row arity %d does not match table %r (%d columns)"
                % (len(row), self.schema.name, len(self.schema.columns))
            )
        ordinal = self._page_with_space()
        frame = self._fetch(ordinal)
        try:
            slots = frame.payload
            slot = slots.index(None)
            slots[slot] = row
        finally:
            self.pool.unpin(frame, dirty=True)
        if None not in slots:
            self._pages_with_space.remove(ordinal)
        self.row_count += 1
        return RowId(ordinal, slot)

    def get(self, row_id):
        """Fetch one row by id."""
        frame = self._fetch(row_id.page_ordinal)
        try:
            row = frame.payload[row_id.slot]
        finally:
            self.pool.unpin(frame)
        if row is None:
            raise ExecutionError("row %r has been deleted" % (row_id,))
        return row

    def update(self, row_id, row):
        """Overwrite the row at ``row_id``; returns the old row."""
        row = tuple(row)
        frame = self._fetch(row_id.page_ordinal)
        try:
            old = frame.payload[row_id.slot]
            if old is None:
                raise ExecutionError("row %r has been deleted" % (row_id,))
            frame.payload[row_id.slot] = row
        finally:
            self.pool.unpin(frame, dirty=True)
        return old

    def delete(self, row_id):
        """Remove the row at ``row_id``; returns it."""
        frame = self._fetch(row_id.page_ordinal)
        try:
            old = frame.payload[row_id.slot]
            if old is None:
                raise ExecutionError("row %r already deleted" % (row_id,))
            frame.payload[row_id.slot] = None
        finally:
            self.pool.unpin(frame, dirty=True)
        if row_id.page_ordinal not in self._pages_with_space:
            self._pages_with_space.append(row_id.page_ordinal)
        self.row_count -= 1
        return old

    # ------------------------------------------------------------------ #
    # access paths
    # ------------------------------------------------------------------ #

    def scan(self):
        """Sequential scan: yields ``(row_id, row)`` in physical order.

        Pages are fetched through the buffer pool in file order, which is
        what makes full scans sequential on the device.
        """
        for ordinal in range(len(self._page_numbers)):
            frame = self._fetch(ordinal)
            try:
                rows = list(frame.payload)
            finally:
                self.pool.unpin(frame)
            for slot, row in enumerate(rows):
                if row is not None:
                    yield RowId(ordinal, slot), row

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _fetch(self, ordinal):
        return self.pool.fetch(
            self.file, self._page_numbers[ordinal], self.page_kind
        )

    def _page_with_space(self):
        if self._pages_with_space:
            return self._pages_with_space[0]
        with self.pool.pin_guard(
            self.pool.new_page(
                self.file, self.page_kind,
                payload=[None] * self.rows_per_page,
            ),
            dirty=True,
        ) as frame:
            ordinal = len(self._page_numbers)
            self._page_numbers.append(frame.page_no)
            self._pages_with_space.append(ordinal)
            return ordinal
