"""Row storage: tables as slotted pages in a paged file, via the pool.

Rows are Python tuples.  Each table page holds a fixed number of row slots
derived from the schema's estimated row width, so table size in pages —
which both the cost model and the buffer governor's soft cap (eq. 1)
consume — scales realistically with row count and row width.

Each page carries a ``page LSN`` — the LSN of the newest log record whose
effect it contains.  The engine stamps it on every logged mutation, and
restart recovery's REDO pass uses it as the ARIES idempotence guard: a
record is reapplied only if the durable page image predates it.

**Row versions.**  Alongside the heap, each table keeps per-row chains of
before-images keyed by commit LSN (see :class:`VersionEntry`): a writer
records the image it is about to overwrite, commit stamps those entries
with the commit ticket's LSN, rollback discards them.  A snapshot read
(``scan(snapshot=...)`` / :meth:`TableStorage.get_visible`) resolves each
row through its chain — the first entry committed *past* the snapshot (or
pending in a foreign transaction) supplies the visible image — so readers
never consult the lock manager.  Chains are volatile: they die with the
process at a crash, which is sound because no snapshot survives one.
"""

from repro.buffer.frames import PageKind
from repro.common.errors import ExecutionError
from repro.storage.log import DELETE as LOG_DELETE
from repro.storage.log import INSERT as LOG_INSERT


class RowId:
    """Physical row address: (page ordinal within table, slot)."""

    __slots__ = ("page_ordinal", "slot")

    def __init__(self, page_ordinal, slot):
        self.page_ordinal = page_ordinal
        self.slot = slot

    def __eq__(self, other):
        return (
            isinstance(other, RowId)
            and self.page_ordinal == other.page_ordinal
            and self.slot == other.slot
        )

    def __hash__(self):
        return hash((self.page_ordinal, self.slot))

    def __lt__(self, other):
        return (self.page_ordinal, self.slot) < (other.page_ordinal, other.slot)

    def __repr__(self):
        return "RowId(%d,%d)" % (self.page_ordinal, self.slot)


def _empty_page(rows_per_page):
    return {"lsn": -1, "slots": [None] * rows_per_page}


class VersionEntry:
    """One superseded row image: what the row looked like *before* the
    change that ``commit_lsn`` (None while the writer is uncommitted)
    made durable.  ``before=None`` means the row did not exist."""

    __slots__ = ("before", "commit_lsn", "txn_id")

    def __init__(self, before, txn_id):
        self.before = before
        self.commit_lsn = None
        self.txn_id = txn_id

    def __repr__(self):
        return "VersionEntry(%r, lsn=%r, txn=%r)" % (
            self.before, self.commit_lsn, self.txn_id
        )


class TableStorage:
    """Heap-file storage for one table."""

    def __init__(self, schema, file, pool, page_kind=PageKind.TABLE):
        self.schema = schema
        self.file = file
        self.pool = pool
        self.page_kind = page_kind
        self.rows_per_page = max(
            1, pool.page_size // max(1, schema.row_bytes())
        )
        self._page_numbers = []  # ordinal -> file page number
        self._pages_with_space = []  # ordinals that have free slots
        self.row_count = 0
        #: row_id -> [VersionEntry, ...] oldest-to-newest.  Per-row write
        #: order equals commit order (row X locks serialize writers), so
        #: chains are naturally sorted by commit LSN with pending entries
        #: at the tail.
        self._versions = {}

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #

    @property
    def page_count(self):
        return len(self._page_numbers)

    def size_bytes(self):
        return self.page_count * self.pool.page_size

    def page_numbers(self):
        return list(self._page_numbers)

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    def insert(self, row, page_lsn=None):
        """Append a row; returns its :class:`RowId`.

        ``page_lsn`` stamps the page with the LSN of the log record about
        to describe this change (WAL recovery bookkeeping).
        """
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise ExecutionError(
                "row arity %d does not match table %r (%d columns)"
                % (len(row), self.schema.name, len(self.schema.columns))
            )
        ordinal = self._page_with_space()
        frame = self._fetch(ordinal)
        try:
            slots = frame.payload["slots"]
            slot = slots.index(None)
            slots[slot] = row
            self._stamp(frame, page_lsn)
        finally:
            self.pool.unpin(frame, dirty=True)
        if None not in slots:
            self._pages_with_space.remove(ordinal)
        self.row_count += 1
        return RowId(ordinal, slot)

    def get(self, row_id):
        """Fetch one row by id."""
        frame = self._fetch(row_id.page_ordinal)
        try:
            row = frame.payload["slots"][row_id.slot]
        finally:
            self.pool.unpin(frame)
        if row is None:
            raise ExecutionError("row %r has been deleted" % (row_id,))
        return row

    def update(self, row_id, row, page_lsn=None):
        """Overwrite the row at ``row_id``; returns the old row."""
        row = tuple(row)
        frame = self._fetch(row_id.page_ordinal)
        try:
            slots = frame.payload["slots"]
            old = slots[row_id.slot]
            if old is None:
                raise ExecutionError("row %r has been deleted" % (row_id,))
            slots[row_id.slot] = row
            self._stamp(frame, page_lsn)
        finally:
            self.pool.unpin(frame, dirty=True)
        return old

    def delete(self, row_id, page_lsn=None):
        """Remove the row at ``row_id``; returns it."""
        frame = self._fetch(row_id.page_ordinal)
        try:
            slots = frame.payload["slots"]
            old = slots[row_id.slot]
            if old is None:
                raise ExecutionError("row %r already deleted" % (row_id,))
            slots[row_id.slot] = None
            self._stamp(frame, page_lsn)
        finally:
            self.pool.unpin(frame, dirty=True)
        if row_id.page_ordinal not in self._pages_with_space:
            self._pages_with_space.append(row_id.page_ordinal)
        self.row_count -= 1
        return old

    # ------------------------------------------------------------------ #
    # access paths
    # ------------------------------------------------------------------ #

    def scan(self, snapshot=None, snapshot_txn=None):
        """Sequential scan: yields ``(row_id, row)`` in physical order.

        Pages are fetched through the buffer pool in file order, which is
        what makes full scans sequential on the device.

        With ``snapshot`` (a commit LSN), each slot resolves through its
        version chain: rows whose newest committed change is past the
        snapshot yield their before-image, foreign uncommitted changes
        are invisible, and ``snapshot_txn``'s own pending writes are
        visible (read-your-own-writes).  Tables with no live chains pay
        nothing extra.
        """
        for ordinal in range(len(self._page_numbers)):
            frame = self._fetch(ordinal)
            try:
                rows = list(frame.payload["slots"])
            finally:
                self.pool.unpin(frame)
            versioned = snapshot is not None and self._versions
            for slot, row in enumerate(rows):
                if versioned:
                    row = self.resolve_visible(
                        RowId(ordinal, slot), row, snapshot, snapshot_txn
                    )
                if row is not None:
                    yield RowId(ordinal, slot), row

    # ------------------------------------------------------------------ #
    # row versions (snapshot reads; repro.engine.versions coordinates)
    # ------------------------------------------------------------------ #

    def remember_version(self, row_id, before, txn_id):
        """Record the image ``txn_id`` is about to supersede (called just
        before every heap mutation; ``before=None`` for inserts)."""
        entry = VersionEntry(
            tuple(before) if before is not None else None, txn_id
        )
        self._versions.setdefault(row_id, []).append(entry)
        return entry

    def stamp_version(self, row_id, txn_id, commit_lsn):
        """Commit: stamp ``txn_id``'s pending entries with its commit LSN."""
        for entry in self._versions.get(row_id, ()):
            if entry.commit_lsn is None and entry.txn_id == txn_id:
                entry.commit_lsn = commit_lsn

    def discard_version(self, row_id, txn_id):
        """Rollback: drop ``txn_id``'s pending entries on ``row_id``."""
        chain = self._versions.get(row_id)
        if not chain:
            return
        keep = [
            e for e in chain
            if e.commit_lsn is not None or e.txn_id != txn_id
        ]
        if keep:
            self._versions[row_id] = keep
        else:
            del self._versions[row_id]

    def resolve_visible(self, row_id, heap_row, snapshot, snapshot_txn=None):
        """The image visible at ``snapshot`` given the current heap image
        (None = empty slot); returns None when the row is invisible."""
        chain = self._versions.get(row_id)
        if not chain:
            return heap_row
        for entry in chain:
            if entry.commit_lsn is None:
                if entry.txn_id == snapshot_txn:
                    continue  # read-your-own-writes
                return entry.before
            if entry.commit_lsn > snapshot:
                return entry.before
        return heap_row

    def get_visible(self, row_id, snapshot, snapshot_txn=None):
        """Visibility-resolved fetch: the row image at ``snapshot`` or
        None when invisible (unlike :meth:`get`, deleted slots do not
        raise — a snapshot may legitimately predate the delete)."""
        frame = self._fetch(row_id.page_ordinal)
        try:
            heap_row = frame.payload["slots"][row_id.slot]
        finally:
            self.pool.unpin(frame)
        return self.resolve_visible(row_id, heap_row, snapshot, snapshot_txn)

    def purge_versions(self, horizon):
        """Drop entries no open snapshot can need: committed entries at
        or below ``horizon`` (None = no snapshot is open, so every
        committed entry goes).  Returns how many entries were dropped."""
        dropped = 0
        for row_id in list(self._versions):
            chain = self._versions[row_id]
            keep = [
                e for e in chain
                if e.commit_lsn is None
                or (horizon is not None and e.commit_lsn > horizon)
            ]
            dropped += len(chain) - len(keep)
            if keep:
                self._versions[row_id] = keep
            else:
                del self._versions[row_id]
        return dropped

    def version_count(self):
        return sum(len(chain) for chain in self._versions.values())

    def has_versions(self):
        return bool(self._versions)

    # ------------------------------------------------------------------ #
    # restart recovery (physical REDO/UNDO, repro.recovery.restart)
    # ------------------------------------------------------------------ #

    def reattach_after_crash(self):
        """Rebind to the file's surviving pages after a simulated crash.

        Table pages are allocated densely and never freed, so ordinal ==
        file page number.  Slot bookkeeping (``row_count``,
        ``_pages_with_space``) is stale until :meth:`rescan_metadata`
        runs at the end of recovery.
        """
        self._page_numbers = list(range(self.file.page_count))
        self._pages_with_space = []
        self.row_count = 0
        # Version chains are volatile state: they died with the process
        # (no snapshot survives a crash, so nothing can miss them).
        self._versions = {}

    def _materialize(self, frame):
        """The frame's page dict, creating an empty page image for pages
        that were allocated but never reached the device before the
        crash (their payload reads back as None)."""
        if frame.payload is None:
            frame.payload = _empty_page(self.rows_per_page)
        return frame.payload

    def redo_apply(self, record):
        """Reapply one data-change record iff the page predates it.

        Returns True if applied, False if the page LSN showed the effect
        already durable (the idempotence guard recovery's sanitizer
        asserts on).
        """
        ordinal = record.row_id.page_ordinal
        while len(self._page_numbers) <= ordinal:
            self._append_page()
        frame = self._fetch(ordinal)
        try:
            page = self._materialize(frame)
            if page["lsn"] >= record.lsn:
                return False
            if record.kind == LOG_DELETE:
                page["slots"][record.row_id.slot] = None
            else:  # INSERT and UPDATE both install the after-image
                page["slots"][record.row_id.slot] = tuple(record.after)
            page["lsn"] = record.lsn
        finally:
            self.pool.unpin(frame, dirty=True)
        return True

    def undo_apply(self, record, lsn):
        """Revert one loser-transaction record via its before-image.

        Undo writes are blind slot writes (idempotent by construction)
        stamped with the compensation record's LSN.
        """
        frame = self._fetch(record.row_id.page_ordinal)
        try:
            page = self._materialize(frame)
            if record.kind == LOG_INSERT:
                page["slots"][record.row_id.slot] = None
            else:  # UPDATE and DELETE restore the before-image
                page["slots"][record.row_id.slot] = tuple(record.before)
            page["lsn"] = lsn
        finally:
            self.pool.unpin(frame, dirty=True)

    def rescan_metadata(self):
        """Rebuild ``row_count`` and the free-slot list from page images
        (one sequential pass; also yields rows for index rebuilds)."""
        self.row_count = 0
        self._pages_with_space = []
        collected = []
        for ordinal in range(len(self._page_numbers)):
            frame = self._fetch(ordinal)
            try:
                slots = self._materialize(frame)["slots"]
                live = 0
                for slot, row in enumerate(slots):
                    if row is not None:
                        live += 1
                        collected.append((RowId(ordinal, slot), row))
                self.row_count += live
                if live < len(slots):
                    self._pages_with_space.append(ordinal)
            finally:
                self.pool.unpin(frame, dirty=True)
        return collected

    def page_images(self):
        """``{ordinal: repr(page)}`` without device I/O, preferring
        in-pool frames over the durable store (sanitizer comparisons)."""
        images = {}
        for ordinal, page_no in enumerate(self._page_numbers):
            key = ("file", self.file.file_id, page_no)
            frame = self.pool._frames.get(key)
            if frame is not None:
                images[ordinal] = repr(frame.payload)
            else:
                images[ordinal] = repr(
                    self.file.volume.peek_payload(self.file.global_page(page_no))
                )
        return images

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def stamp_page(self, ordinal, lsn):
        """Raise a page's LSN to cover a log record about to be appended.

        The engine calls this immediately before ``log_change`` so the
        stamp and the record always agree; nothing runs in between that
        could flush the page or fail the statement.
        """
        frame = self._fetch(ordinal)
        try:
            self._stamp(frame, lsn)
        finally:
            self.pool.unpin(frame, dirty=True)

    def _stamp(self, frame, page_lsn):
        if page_lsn is not None and page_lsn > frame.payload["lsn"]:
            frame.payload["lsn"] = page_lsn

    def _fetch(self, ordinal):
        return self.pool.fetch(
            self.file, self._page_numbers[ordinal], self.page_kind
        )

    def _append_page(self):
        with self.pool.pin_guard(
            self.pool.new_page(
                self.file, self.page_kind,
                payload=_empty_page(self.rows_per_page),
            ),
            dirty=True,
        ) as frame:
            ordinal = len(self._page_numbers)
            self._page_numbers.append(frame.page_no)
            self._pages_with_space.append(ordinal)
            return ordinal

    def _page_with_space(self):
        if self._pages_with_space:
            return self._pages_with_space[0]
        return self._append_page()
