"""Two-way database synchronization (paper Section 1).

"The proliferation of database systems in the mobile and embedded market
segments is due ... to the support for two-way database replication and
synchronization ...  Data synchronization technology makes it possible for
remote users to both access and update corporate data at a remote,
off-site location ... even when disconnected from the corporate network."

This package implements a MobiLink-style synchronization layer over the
engines' transaction logs: a remote (handheld/branch) database accumulates
committed changes while disconnected, then a synchronization session
uploads them to the consolidated database, downloads the consolidated
side's changes, and resolves update conflicts by policy.
"""

from repro.sync.session import (
    ConflictPolicy,
    SyncConflict,
    SyncSession,
    SyncStats,
)

__all__ = ["SyncSession", "SyncStats", "SyncConflict", "ConflictPolicy"]
