"""Synchronization sessions between a remote and a consolidated server.

The protocol is log-shipping by logical primary key:

1. **Upload**: committed data changes in the remote's transaction log past
   the last synchronized LSN are replayed against the consolidated
   database, keyed by primary key (physical row ids differ per site).
2. **Download**: the consolidated side's changes past its own watermark
   are replayed against the remote the same way.
3. **Conflicts**: an upload UPDATE whose pre-image no longer matches the
   consolidated row (someone changed it there since the last sync) is a
   conflict, resolved by policy: ``consolidated-wins`` discards the remote
   change (the consolidated value flows down), ``remote-wins`` applies it
   anyway.

Changes applied *by* synchronization are logged normally (they must be as
durable as any other write) but are remembered by transaction id so the
next session does not echo them back.
"""

from repro.common.errors import ExecutionError, ReproError
from repro.storage.log import DELETE as LOG_DELETE
from repro.storage.log import INSERT as LOG_INSERT
from repro.storage.log import UPDATE as LOG_UPDATE


class ConflictPolicy:
    CONSOLIDATED_WINS = "consolidated-wins"
    REMOTE_WINS = "remote-wins"


class SyncConflict:
    """One detected update/update (or update/delete) conflict."""

    def __init__(self, table, pk, remote_row, consolidated_row, resolution):
        self.table = table
        self.pk = pk
        self.remote_row = remote_row
        self.consolidated_row = consolidated_row
        self.resolution = resolution

    def __repr__(self):
        return "SyncConflict(%s pk=%r -> %s)" % (
            self.table, self.pk, self.resolution
        )


class SyncStats:
    """Outcome of one synchronization session."""

    def __init__(self):
        self.uploaded = 0
        self.downloaded = 0
        self.conflicts = []

    def __repr__(self):
        return "SyncStats(up=%d, down=%d, conflicts=%d)" % (
            self.uploaded, self.downloaded, len(self.conflicts)
        )


class SyncSession:
    """A persistent subscription between one remote and one consolidated
    server, covering a set of tables (each table must have a primary key
    and identical schemas on both sides)."""

    def __init__(self, remote, consolidated, tables,
                 conflict_policy=ConflictPolicy.CONSOLIDATED_WINS):
        self.remote = remote
        self.consolidated = consolidated
        self.tables = list(tables)
        self.conflict_policy = conflict_policy
        self._remote_watermark = -1
        self._consolidated_watermark = -1
        #: Transaction ids created by sync application, per server id,
        #: excluded from future uploads/downloads (no echo).
        self._sync_txns = {id(remote): set(), id(consolidated): set()}
        for table_name in self.tables:
            for server in (remote, consolidated):
                schema = server.catalog.table(table_name)
                if not schema.primary_key:
                    raise ReproError(
                        "synchronized table %r needs a primary key"
                        % (table_name,)
                    )

    # ------------------------------------------------------------------ #
    # the session
    # ------------------------------------------------------------------ #

    def synchronize(self):
        """One full upload+download round; returns :class:`SyncStats`.

        Both sides must be quiescent (no open transactions touching the
        subscribed tables), as in a real synchronization window.
        """
        stats = SyncStats()
        upload = self._changes_since(self.remote, self._remote_watermark)
        download = self._changes_since(
            self.consolidated, self._consolidated_watermark
        )
        # Upload first; conflicts are decided against the consolidated
        # database's pre-sync state ("the consolidated database is the
        # system of record").
        self._apply(
            upload, self.consolidated, stats, direction="upload",
        )
        stats.uploaded = len(upload)
        self._apply(
            download, self.remote, stats, direction="download",
        )
        stats.downloaded = len(download)
        # Watermarks advance past everything now in the logs (including
        # the rows sync itself just wrote, which are filtered by txn id).
        self._remote_watermark = self.remote.txn_log.durable_lsn
        self._consolidated_watermark = self.consolidated.txn_log.durable_lsn
        return stats

    # ------------------------------------------------------------------ #
    # change capture
    # ------------------------------------------------------------------ #

    def _changes_since(self, server, watermark):
        excluded = self._sync_txns[id(server)]
        return [
            record
            for record in server.txn_log.redo_records()
            if record.lsn > watermark
            and record.table in self.tables
            and record.txn_id not in excluded
        ]

    # ------------------------------------------------------------------ #
    # change application
    # ------------------------------------------------------------------ #

    def _apply(self, records, target, stats, direction):
        if not records:
            return
        connection = target.connect()
        try:
            txn_id = connection.begin()
            self._sync_txns[id(target)].add(txn_id)
            for record in records:
                self._apply_one(record, target, txn_id, stats, direction)
            connection.commit()
        except Exception:
            connection.rollback()
            raise
        finally:
            connection.close()

    def _apply_one(self, record, target, txn_id, stats, direction):
        table = target.catalog.table(record.table)
        pk_of = _pk_extractor(table)
        if record.kind == LOG_INSERT:
            pk = pk_of(record.after)
            existing = _find_by_pk(target, table, pk)
            if existing is not None:
                # Insert/insert conflict: treat as an update of the row.
                self._resolve_update(
                    record, target, table, pk, existing, txn_id, stats,
                    direction,
                )
                return
            self._do_insert(target, table, record.after, txn_id)
        elif record.kind == LOG_UPDATE:
            pk = pk_of(record.after)
            existing = _find_by_pk(target, table, pk_of(record.before))
            if existing is None:
                # Update/delete conflict: the row vanished on the target.
                resolution = self._record_conflict(
                    record.table, pk, record.after, None, stats
                )
                if resolution == ConflictPolicy.REMOTE_WINS and (
                    direction == "upload"
                ):
                    self._do_insert(target, table, record.after, txn_id)
                return
            row_id, current = existing
            if direction == "upload" and tuple(current) != tuple(record.before):
                # Update/update conflict: the target diverged too.
                self._resolve_update(
                    record, target, table, pk, existing, txn_id, stats,
                    direction,
                )
                return
            self._do_update(target, table, row_id, current, record.after, txn_id)
        elif record.kind == LOG_DELETE:
            existing = _find_by_pk(target, table, pk_of(record.before))
            if existing is None:
                return  # deleted on both sides: nothing to do
            row_id, current = existing
            self._do_delete(target, table, row_id, current, txn_id)

    def _resolve_update(self, record, target, table, pk, existing, txn_id,
                        stats, direction):
        row_id, current = existing
        resolution = self._record_conflict(
            record.table, pk, record.after, current, stats
        )
        remote_change_applies = (
            resolution == ConflictPolicy.REMOTE_WINS
            if direction == "upload"
            else resolution == ConflictPolicy.CONSOLIDATED_WINS
        )
        if remote_change_applies:
            self._do_update(
                target, table, row_id, current, record.after, txn_id
            )

    def _record_conflict(self, table_name, pk, remote_row, consolidated_row,
                         stats):
        conflict = SyncConflict(
            table_name, pk, remote_row, consolidated_row,
            self.conflict_policy,
        )
        stats.conflicts.append(conflict)
        return self.conflict_policy

    # -- scheduler integration -------------------------------------------- #

    def scheduled_statement(self):
        """This session as a workload-scheduler statement item.

        Scheduled as a callable session item, the whole round runs under
        the scheduler's yield discipline on the scheduled thread: its
        row-lock acquisitions park at the lock-wait yield point and its
        commits park at the group-commit yield point — so the crash
        harness can kill the server mid-sync, inside a commit or while
        lock queues are deep.
        """
        def run_sync(conn):
            self.synchronize()
        run_sync.__name__ = "sync.synchronize"
        return run_sync

    # -- primitive writes (locked and logged on the target) ---------------- #

    def _do_insert(self, target, table, row, txn_id):
        row_id = table.storage.insert(row)
        try:
            target.lock_manager.acquire(txn_id, table.name, row_id)
        except Exception:
            # Nothing is logged yet: compensate the heap insert physically.
            table.storage.delete(row_id)
            raise
        target.versions.note_write(table.storage, row_id, None, txn_id)
        target._index_insert(table, row, row_id)
        target.stats.note_insert(table.name, row)
        table.storage.stamp_page(
            row_id.page_ordinal, target.txn_log.peek_next_lsn()
        )
        target.txn_log.log_change(
            txn_id, LOG_INSERT, table.name, row_id, after=tuple(row)
        )

    def _do_update(self, target, table, row_id, old_row, new_row, txn_id):
        target.lock_manager.acquire(txn_id, table.name, row_id)
        # The acquire may have parked this session: the row may have
        # changed (or vanished) while it waited, so re-read under the lock.
        old_row = table.storage.get(row_id)
        target.versions.note_write(table.storage, row_id, old_row, txn_id)
        table.storage.update(row_id, new_row)
        target._index_delete(table, old_row, row_id)
        target._index_insert(table, new_row, row_id)
        target.stats.note_update(table.name, old_row, new_row)
        table.storage.stamp_page(
            row_id.page_ordinal, target.txn_log.peek_next_lsn()
        )
        target.txn_log.log_change(
            txn_id, LOG_UPDATE, table.name, row_id,
            before=tuple(old_row), after=tuple(new_row),
        )

    def _do_delete(self, target, table, row_id, old_row, txn_id):
        target.lock_manager.acquire(txn_id, table.name, row_id)
        old_row = table.storage.get(row_id)
        target.versions.note_write(table.storage, row_id, old_row, txn_id)
        table.storage.delete(row_id)
        target._index_delete(table, old_row, row_id)
        target.stats.note_delete(table.name, old_row)
        table.storage.stamp_page(
            row_id.page_ordinal, target.txn_log.peek_next_lsn()
        )
        target.txn_log.log_change(
            txn_id, LOG_DELETE, table.name, row_id, before=tuple(old_row)
        )


# --------------------------------------------------------------------- #
# primary-key plumbing
# --------------------------------------------------------------------- #

def _pk_extractor(table):
    indexes = [table.column_index(name) for name in table.primary_key]

    def extract(row):
        return tuple(row[i] for i in indexes)

    return extract


def _find_by_pk(server, table, pk):
    """(row_id, row) for the primary key, via the pk index if present."""
    pk_index_name = "pk_%s" % table.name
    try:
        index = server.catalog.index(pk_index_name)
    except Exception:
        index = None
    if index is not None and index.btree is not None:
        for __, row_id in index.btree.prefix_scan(pk):
            try:
                return row_id, table.storage.get(row_id)
            except ExecutionError:
                continue
    extract = _pk_extractor(table)
    for row_id, row in table.storage.scan():
        if extract(row) == pk:
            return row_id, row
    return None
