"""Adversarial workload factory: seeded schemas, seeded queries, and
expected-output-free oracles.

The statement generators in :mod:`repro.workloads` exercise *fixed*
shapes, so the chaos/crash/scheduler matrices can only assert invariants
(determinism, recovery, absence of crashes).  This package closes the
semantic gap: :class:`SchemaGenerator` derives an arbitrary typed schema
(NULL fractions, secondary indexes, seeded rows) from one integer,
:class:`QueryGenerator` derives SELECTs with nested predicates, joins,
aggregates, and ORDER/LIMIT from another, and two oracles judge the
results without ever knowing the expected output:

* **TLP** (ternary-logic partitioning): for any predicate ``p``, the
  rows of ``WHERE (p)``, ``WHERE NOT (p)`` and ``WHERE (p) IS NULL``
  must union — as a multiset — to the unpartitioned result, including
  the aggregate- and DISTINCT-combining variants.
* **NoREC** (plan variation): the same query re-run with execution
  features toggled per statement (batch execution on/off, snapshot
  reads on/off, index scans forced to heap fallback, plan cache used
  vs bypassed) must return the identical multiset.

Because everything is derived from seeds, every violation shrinks *by
construction* to a ``(seed, schema_seed, statement_index)`` triple plus
the statement trace; :func:`replay_triple` re-runs exactly that
statement as an ordinary assertion.
"""

from repro.testgen.schema import ColumnSpec, GeneratedSchema, SchemaGenerator, TableSpec
from repro.testgen.queries import GeneratedQuery, QueryGenerator
from repro.testgen.oracles import (
    OracleViolation,
    check_norec,
    check_tlp,
    multiset,
)
from repro.testgen.harness import AdversarialHarness, HarnessResult, replay_triple
from repro.testgen.planted import kleene_not_bug, predicate_pushdown_bug

__all__ = [
    "ColumnSpec",
    "TableSpec",
    "GeneratedSchema",
    "SchemaGenerator",
    "GeneratedQuery",
    "QueryGenerator",
    "OracleViolation",
    "multiset",
    "check_tlp",
    "check_norec",
    "AdversarialHarness",
    "HarnessResult",
    "replay_triple",
    "kleene_not_bug",
    "predicate_pushdown_bug",
]
