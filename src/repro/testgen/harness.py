"""The adversarial harness: one seeded stream of statements + oracles.

A harness run is a pure function of ``(seed, schema_seed)`` plus its
knobs: the schema, the initial load, every DML statement, every
generated query, and the order in which the oracles fire are all drawn
from seeded generators — wall-clock time and unseeded randomness never
enter.  Two consequences the CI lane leans on:

* running the same harness twice must produce **byte-identical logs**
  (any divergence is a determinism bug, oracle results included);
* any oracle violation is fully reproduced by the triple
  ``(seed, schema_seed, statement_index)`` — :func:`replay_triple`
  turns one into an ordinary assertion.

Faults (chaos mode) are themselves seeded, so a :class:`FaultError`
during a statement is a deterministic *skip*, not a violation.
"""

import random

from repro.common.errors import FaultError
from repro.engine import Server, ServerConfig, WorkloadScheduler
from repro.faults import FaultPlan, FaultRates
from repro.testgen.oracles import OracleViolation, check_norec, check_tlp
from repro.testgen.queries import QueryGenerator
from repro.testgen.schema import SchemaGenerator, random_dml

#: Chaos rates for harness runs: cranked like the concurrency soak so
#: short runs still draw faults, low enough that retries absorb most.
HARNESS_RATES = FaultRates(
    disk_read_error=0.01,
    disk_write_error=0.01,
    disk_latency=0.01,
    log_force_error=0.01,
    spill_write_error=0.01,
)

#: Fraction of statement slots that mutate data instead of checking.
DML_FRACTION = 0.35

#: In scheduler mode, a multi-session DML burst runs every this-many
#: statement slots.
BURST_EVERY = 40
BURST_SESSIONS = 3
BURST_STATEMENTS = 6


class HarnessResult:
    """What one harness run produced."""

    def __init__(self, seed, schema_seed):
        self.seed = seed
        self.schema_seed = schema_seed
        self.log_lines = []
        self.violations = []
        self.tlp_checks = 0
        self.norec_checks = 0
        self.oracle_statements = 0
        self.dml_statements = 0
        self.fault_skips = 0
        self.bursts = 0

    def record_fault(self, index, label):
        """Account one deterministic fault-skip (seeded chaos injection
        aborted the statement; same seed, same skip)."""
        self.fault_skips += 1
        self.log_lines.append("%04d %s fault-skip" % (index, label))

    def log_text(self):
        return "\n".join(self.log_lines) + "\n"

    def summary(self):
        return (
            "seed=%d schema=%d oracle_stmts=%d (tlp=%d norec=%d) dml=%d "
            "bursts=%d fault_skips=%d violations=%d"
            % (
                self.seed, self.schema_seed, self.oracle_statements,
                self.tlp_checks, self.norec_checks, self.dml_statements,
                self.bursts, self.fault_skips, len(self.violations),
            )
        )


class AdversarialHarness:
    """Runs ``statements`` seeded slots of DML + oracle checks."""

    def __init__(self, seed, schema_seed, statements=120, chaos=False,
                 scheduler_bursts=False, server_config=None,
                 include_plan_cache=True):
        self.seed = seed
        self.schema_seed = schema_seed
        self.statements = statements
        self.chaos = chaos
        self.scheduler_bursts = scheduler_bursts
        self.server_config = server_config
        self.include_plan_cache = include_plan_cache

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def _build_server(self):
        if self.server_config is not None:
            return Server(self.server_config)
        fault_plan = None
        if self.chaos:
            fault_plan = FaultPlan(seed=self.seed, rates=HARNESS_RATES)
        return Server(ServerConfig(
            start_buffer_governor=False,
            fault_plan=fault_plan,
        ))

    def _load(self, connection, schema):
        """DDL + seeded initial rows; load depends only on schema_seed."""
        for sql in schema.ddl_statements():
            connection.execute(sql)
        load_rng = random.Random("load:%d" % self.schema_seed)
        for sql in schema.load_statements(load_rng):
            connection.execute(sql)

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self, raise_on_violation=False):
        schema = SchemaGenerator(self.schema_seed).generate()
        server = self._build_server()
        connection = server.connect()
        self._load(connection, schema)
        rng = random.Random("harness:%d:%d" % (self.seed, self.schema_seed))
        queries = QueryGenerator(rng, schema)
        result = HarnessResult(self.seed, self.schema_seed)
        for index in range(self.statements):
            if (
                self.scheduler_bursts
                and index > 0
                and index % BURST_EVERY == 0
            ):
                self._burst(server, schema, rng, index, result)
            roll = rng.random()
            if roll < DML_FRACTION:
                self._dml_slot(connection, schema, rng, index, result)
            else:
                self._oracle_slot(
                    connection, queries, rng, index, result,
                    raise_on_violation,
                )
        result.log_lines.append("end %s" % result.summary())
        return result

    def _dml_slot(self, connection, schema, rng, index, result):
        sql = random_dml(rng, rng.choice(schema.tables))
        result.dml_statements += 1
        try:
            connection.execute(sql)
        except FaultError:
            result.record_fault(index, "dml")
            return
        result.log_lines.append("%04d dml ok" % index)

    def _oracle_slot(self, connection, queries, rng, index, result,
                     raise_on_violation):
        use_tlp = rng.random() < 0.5
        result.oracle_statements += 1
        if use_tlp:
            query = queries.tlp_query()
            oracle = "tlp"
            result.tlp_checks += 1
        else:
            query = queries.norec_query()
            oracle = "norec"
            result.norec_checks += 1
        try:
            if use_tlp:
                outcome = check_tlp(connection, query)
            else:
                outcome = check_norec(
                    connection, query,
                    include_plan_cache=self.include_plan_cache,
                )
        except FaultError:
            result.record_fault(index, "%s %-12s" % (oracle, query.shape))
            return
        if outcome["violation"] is None:
            result.log_lines.append(
                "%04d %s %-12s rows=%d sha=%s ok"
                % (index, oracle, query.shape, outcome["rows"],
                   outcome["digest"])
            )
            return
        result.log_lines.append(
            "%04d %s %-12s VIOLATION" % (index, oracle, query.shape)
        )
        violation = OracleViolation(
            oracle, outcome["violation"],
            seed=self.seed, schema_seed=self.schema_seed,
            statement_index=index,
            trace=self._trace(query, outcome["violation"]),
        )
        result.violations.append(violation)
        if raise_on_violation:
            raise violation

    @staticmethod
    def _trace(query, detail):
        """The statement trace attached to a violation artifact."""
        if "sqls" in detail:
            return list(detail["sqls"])
        return [query.sql()]

    def _burst(self, server, schema, rng, index, result):
        """A deterministic multi-session DML burst through the
        scheduler: statements are pre-generated from the main rng (so
        generation order never depends on interleaving), then replayed
        by concurrent sessions under the seeded scheduler."""
        from repro.workloads.adversarial import adversarial_sessions

        sessions = adversarial_sessions(
            rng, schema, BURST_SESSIONS, BURST_STATEMENTS
        )
        scheduler = WorkloadScheduler(
            server, seed=self.seed * 1_000_003 + index, switch_rate=0.5
        )
        for name, source in sessions:
            scheduler.add_session(name, source)
        report = scheduler.run()
        result.bursts += 1
        result.log_lines.append(
            "%04d burst sessions=%d stmts=%d errors=%d"
            % (index, BURST_SESSIONS, report["statements"],
               report["statement_errors"])
        )


def replay_triple(seed, schema_seed, statement_index, chaos=False,
                  scheduler_bursts=False, raise_on_violation=False):
    """Re-run one shrunken triple; returns the violation at that index
    (or ``None`` if the engine now passes).

    Everything up to the index is replayed — the statement stream is
    the reproduction, the triple is just its address.
    """
    harness = AdversarialHarness(
        seed, schema_seed, statements=statement_index + 1,
        chaos=chaos, scheduler_bursts=scheduler_bursts,
    )
    result = harness.run(raise_on_violation=False)
    for violation in result.violations:
        if violation.statement_index == statement_index:
            if raise_on_violation:
                raise violation
            return violation
    return None
