"""Expected-output-free oracles: TLP partitioning and NoREC variation.

Neither oracle knows what a query *should* return; both derive a second
answer the engine is obligated to agree with — its own answer under a
ternary-logic repartition (TLP) or under a different physical plan
(NoREC).  A disagreement is a semantic bug by construction.
"""

import hashlib
from collections import Counter

from repro.engine import StatementOverrides

#: The NoREC plan-variation matrix.  ``plan_cache`` is handled
#: specially (the query must be executed past the cache's training
#: period so a *cached* plan actually serves the final answer).
NOREC_VARIANTS = (
    ("batch_on", StatementOverrides(batch_execution=True)),
    ("batch_off", StatementOverrides(batch_execution=False)),
    ("snapshot_on", StatementOverrides(snapshot_reads=True)),
    ("snapshot_off", StatementOverrides(snapshot_reads=False)),
    ("heap_scan", StatementOverrides(force_heap_scan=True)),
)

#: Executions per plan-cache probe; the cache trains for 3 runs, so the
#: 5th answer comes from a cached plan.
PLAN_CACHE_RUNS = 5


class OracleViolation(Exception):
    """An oracle disagreement, shrunk by construction to a seed triple."""

    def __init__(self, oracle, detail, seed=None, schema_seed=None,
                 statement_index=None, trace=None):
        self.oracle = oracle
        self.detail = detail
        self.seed = seed
        self.schema_seed = schema_seed
        self.statement_index = statement_index
        self.trace = list(trace or [])
        super().__init__(self.describe())

    def shrink_triple(self):
        return (self.seed, self.schema_seed, self.statement_index)

    def describe(self):
        return "%s violation at (seed=%r, schema_seed=%r, statement=%r): %s" % (
            self.oracle, self.seed, self.schema_seed,
            self.statement_index, self.detail,
        )

    def to_dict(self):
        """JSON-able artifact payload for the CI lane."""
        return {
            "oracle": self.oracle,
            "seed": self.seed,
            "schema_seed": self.schema_seed,
            "statement_index": self.statement_index,
            "detail": self.detail,
            "trace": self.trace,
            "replay": (
                "PYTHONPATH=src python -c \"from repro.testgen import "
                "replay_triple; replay_triple(%r, %r, %r)\""
                % (self.seed, self.schema_seed, self.statement_index)
            ),
        }


def run_rows(connection, sql, overrides=None):
    """Execute and materialize as a list of plain tuples."""
    result = connection.execute(sql, overrides=overrides)
    return [tuple(row) for row in result.rows]


def multiset(rows):
    return Counter(tuple(row) for row in rows)


def multiset_diff(expected, actual):
    """A compact description of how two multisets differ."""
    missing = expected - actual
    extra = actual - expected
    return {
        "missing": sorted(map(repr, missing.elements()))[:8],
        "extra": sorted(map(repr, extra.elements()))[:8],
        "expected_rows": sum(expected.values()),
        "actual_rows": sum(actual.values()),
    }


def result_digest(rows):
    """A short stable digest of a result multiset (for run logs)."""
    payload = "\n".join(sorted(repr(row) for row in rows))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# --------------------------------------------------------------------- #
# TLP
# --------------------------------------------------------------------- #

def check_tlp(connection, query, overrides=None):
    """Run the four TLP queries.

    Returns ``{"violation": detail-or-None, "digest": ..., "rows": n}``
    where the digest covers the unpartitioned result (run logs compare
    it byte-for-byte across repeat runs).

    For ``plain`` queries the three partitions must union-multiset to
    the unpartitioned result.  ``distinct`` compares as *set* union:
    the underlying rows partition disjointly, but two of them can
    project to the same DISTINCT row in different partitions, so only
    the union of the partition sets — not their multiset sum — must
    equal the unpartitioned set.  ``aggregate`` recombines COUNT by
    summing, SUM by summing non-NULLs, MIN/MAX by folding.
    """
    unpart_sql, true_sql, false_sql, unknown_sql = query.tlp_sqls()
    whole = run_rows(connection, unpart_sql, overrides)
    parts = [
        run_rows(connection, true_sql, overrides),
        run_rows(connection, false_sql, overrides),
        run_rows(connection, unknown_sql, overrides),
    ]
    outcome = {
        "violation": None,
        "digest": result_digest(whole),
        "rows": len(whole),
    }
    if query.kind == "aggregate":
        outcome["violation"] = _tlp_aggregate(query, whole, parts)
        return outcome
    if query.kind == "distinct":
        expected = set(whole)
        actual = set().union(*map(set, parts))
        if expected != actual:
            outcome["violation"] = {
                "mode": "distinct",
                "sqls": list(query.tlp_sqls()),
                "missing": sorted(map(repr, expected - actual))[:8],
                "extra": sorted(map(repr, actual - expected))[:8],
            }
        return outcome
    expected = multiset(whole)
    actual = multiset(parts[0]) + multiset(parts[1]) + multiset(parts[2])
    if expected != actual:
        detail = multiset_diff(expected, actual)
        detail["mode"] = "plain"
        detail["sqls"] = list(query.tlp_sqls())
        outcome["violation"] = detail
    return outcome


def _tlp_aggregate(query, whole, parts):
    """Recombine single-row aggregate results across the partitions."""
    whole_row = whole[0]
    part_rows = [rows[0] for rows in parts]
    combined = []
    for position, (func, __) in enumerate(query.agg_funcs):
        values = [row[position] for row in part_rows]
        non_null = [v for v in values if v is not None]
        if func == "COUNT":
            combined.append(sum(values))
        elif func == "SUM":
            combined.append(sum(non_null) if non_null else None)
        elif func == "MIN":
            combined.append(min(non_null) if non_null else None)
        else:  # MAX
            combined.append(max(non_null) if non_null else None)
    if tuple(combined) != tuple(whole_row):
        return {
            "mode": "aggregate",
            "sqls": list(query.tlp_sqls()),
            "whole": repr(tuple(whole_row)),
            "combined": repr(tuple(combined)),
            "partitions": [repr(tuple(row)) for row in part_rows],
        }
    return None


# --------------------------------------------------------------------- #
# NoREC
# --------------------------------------------------------------------- #

def check_norec(connection, query, include_plan_cache=True):
    """Run the query under every plan variant; all answers must agree.

    The baseline runs with no overrides (whatever the server defaults
    are).  Queries with a LIMIT are generated with a *total* ORDER BY,
    so variants are compared as exact lists; everything else compares
    as multisets (ORDER BY without LIMIT still reorders only).  Returns
    the same outcome dict shape as :func:`check_tlp`.
    """
    sql = query.sql()
    baseline = run_rows(connection, sql)
    exact = query.limit is not None
    expected = baseline if exact else multiset(baseline)
    outcome = {
        "violation": None,
        "digest": result_digest(baseline),
        "rows": len(baseline),
    }
    variants = [(name, overrides, 1) for name, overrides in NOREC_VARIANTS]
    if include_plan_cache:
        variants.append((
            "plan_cache", StatementOverrides(use_plan_cache=True),
            PLAN_CACHE_RUNS,
        ))
    for name, overrides, repeats in variants:
        for run in range(repeats):
            rows = run_rows(connection, sql, overrides)
            actual = rows if exact else multiset(rows)
            if actual == expected:
                continue
            detail = {
                "mode": "norec", "variant": name, "sql": sql,
                "exact": exact,
            }
            if repeats > 1:
                detail["cache_run"] = run
            if exact:
                detail["expected"] = [repr(r) for r in baseline[:10]]
                detail["actual"] = [repr(r) for r in rows[:10]]
            else:
                detail.update(multiset_diff(multiset(baseline),
                                            multiset(rows)))
            outcome["violation"] = detail
            return outcome
    return outcome
