"""Planted semantic bugs: the oracle suite's negative controls.

An oracle that never fires is indistinguishable from one that cannot
fire.  These context managers temporarily break NULL semantics in two
historically popular ways; the regression suite asserts that TLP
catches *both* — if a refactor ever makes the oracles blind, the
negatives go red before a real bug slips through.

Both bugs are planted in the row **and** batch evaluators, like a
genuine misreading of the SQL spec would be — a single-mode plant would
be caught by NoREC's batch-on/batch-off variation instead of by TLP.
And both are deliberately **asymmetric** across the TLP partitions: a
NULL-semantics bug applied uniformly to every partition (e.g.
``NULL AND TRUE = TRUE`` inside every branch) can cancel out of the
partition equation and survive TLP.  Treating unknown as satisfied at
the *filter* level (the pushdown bug) triple-counts NULL-predicate
rows; rewriting only ``NOT unknown`` to TRUE (the Kleene bug)
double-counts them.
"""

import contextlib

from repro.exec import aggregates as aggregates_module
from repro.exec import expr as expr_module
from repro.exec import operators as operators_module
from repro.sql import ast

#: Modules that imported the predicate entry points by name; the plant
#: must rebind each import site, not just the defining module.
_FILTER_SITES = (operators_module, aggregates_module)


@contextlib.contextmanager
def predicate_pushdown_bug():
    """Scan/filter predicate evaluation treats unknown as satisfied.

    The classic predicate-pushdown bug: a filter pushed into the scan
    drops the "unknown is not satisfied" rule, so rows whose predicate
    evaluates to NULL leak through every WHERE clause — in row mode and
    batch mode alike.  TLP then sees each NULL-predicate row in all
    three partitions instead of exactly one.
    """
    saved = [
        (site, site.evaluate_predicate, site.evaluate_predicate_batch)
        for site in _FILTER_SITES
    ]

    def leaky(expr, env, params=None):
        value = expr_module.evaluate(expr, env, params)
        if value is None:
            return True  # BUG: unknown treated as satisfied
        return expr_module._truthy(value)

    def leaky_batch(expr, batch, params=None):
        return [
            True if value is None else expr_module._truthy(value)
            for value in expr_module.evaluate_batch(expr, batch, params)
        ]

    for site in _FILTER_SITES:
        site.evaluate_predicate = leaky
        site.evaluate_predicate_batch = leaky_batch
    try:
        yield
    finally:
        for site, row_fn, batch_fn in saved:
            site.evaluate_predicate = row_fn
            site.evaluate_predicate_batch = batch_fn


@contextlib.contextmanager
def kleene_not_bug():
    """``NOT unknown`` evaluates to TRUE instead of unknown.

    A broken three-valued negation: two-valued boolean logic applied to
    a nullable operand.  ``WHERE p`` stays correct, but ``WHERE NOT (p)``
    now *also* returns the NULL-predicate rows, so TLP sees them twice.
    Patched on :func:`repro.exec.expr.evaluate` and
    :func:`~repro.exec.expr.evaluate_batch` themselves — the module's
    internal recursion (and ``evaluate_predicate``'s dispatch) resolves
    both through its globals, so nested NOTs break too, exactly like a
    real evaluator bug.
    """
    original = expr_module.evaluate
    original_batch = expr_module.evaluate_batch

    def broken(expr, env, params=None):
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            value = broken(expr.operand, env, params)
            if value is None:
                return True  # BUG: NOT unknown -> TRUE
            return not expr_module._truthy(value)
        return original(expr, env, params)

    def broken_batch(expr, batch, params=None):
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            return [
                True if value is None else (not expr_module._truthy(value))
                for value in broken_batch(expr.operand, batch, params)
            ]
        return original_batch(expr, batch, params)

    expr_module.evaluate = broken
    expr_module.evaluate_batch = broken_batch
    try:
        yield
    finally:
        expr_module.evaluate = original
        expr_module.evaluate_batch = original_batch
