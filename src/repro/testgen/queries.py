"""Seeded SELECT generation with a TLP-separable predicate.

Every generated query keeps its WHERE predicate *separable*: the query
knows how to render itself unpartitioned, and partitioned as
``WHERE (p)`` / ``WHERE NOT (p)`` / ``WHERE (p) IS NULL`` — the three
branches of SQL's ternary logic, which must repartition the
unpartitioned multiset exactly.

Shapes covered: single-table scans, inner and left joins, nested
AND/OR/NOT predicates over comparisons, IS NULL, BETWEEN, IN-lists and
LIKE, non-grouped aggregates (COUNT/SUM/MIN/MAX over INT columns —
float aggregation is excluded so addition order can never masquerade as
a bug), DISTINCT projections, GROUP BY/HAVING (NoREC only), and
ORDER BY with an optional LIMIT whose sort order is total (the primary
key is always the final tiebreaker), so every plan variant must produce
the identical row *list*, not just multiset.
"""

from repro.testgen.schema import WORDS, render_literal

#: Aggregate shapes TLP knows how to recombine across partitions.
AGG_FUNCS = ("COUNT", "SUM", "MIN", "MAX")


class GeneratedQuery:
    """One generated SELECT, predicate kept separable for TLP."""

    def __init__(self, kind, select_list, from_clause, predicate,
                 agg_funcs=None, group_by=None, having=None,
                 order_by=None, limit=None, shape="single"):
        self.kind = kind              # 'plain' | 'aggregate' | 'distinct'
        self.select_list = select_list
        self.from_clause = from_clause
        self.predicate = predicate    # the separable p (string), or None
        self.agg_funcs = agg_funcs or []   # [(func, rendered_arg)]
        self.group_by = group_by
        self.having = having
        self.order_by = order_by
        self.limit = limit
        self.shape = shape

    def _suffix(self):
        parts = []
        if self.group_by:
            parts.append("GROUP BY %s" % self.group_by)
        if self.having:
            parts.append("HAVING %s" % self.having)
        if self.order_by:
            parts.append("ORDER BY %s" % self.order_by)
        if self.limit is not None:
            parts.append("LIMIT %d" % self.limit)
        return (" " + " ".join(parts)) if parts else ""

    def sql(self):
        """The unrestricted query (predicate applied if present)."""
        where = " WHERE %s" % self.predicate if self.predicate else ""
        return "SELECT %s FROM %s%s%s" % (
            self.select_list, self.from_clause, where, self._suffix()
        )

    def sql_unpartitioned(self):
        """The TLP reference query: no WHERE at all."""
        return "SELECT %s FROM %s%s" % (
            self.select_list, self.from_clause, self._suffix()
        )

    def sql_partition(self, branch):
        """One TLP branch: 'true', 'false', or 'unknown'."""
        predicate = {
            "true": "(%s)" % self.predicate,
            "false": "NOT (%s)" % self.predicate,
            "unknown": "(%s) IS NULL" % self.predicate,
        }[branch]
        return "SELECT %s FROM %s WHERE %s%s" % (
            self.select_list, self.from_clause, predicate, self._suffix()
        )

    def tlp_sqls(self):
        return (
            self.sql_unpartitioned(),
            self.sql_partition("true"),
            self.sql_partition("false"),
            self.sql_partition("unknown"),
        )


class QueryGenerator:
    """Derives seeded queries over a :class:`GeneratedSchema`.

    The generator is driven by an externally supplied ``random.Random``
    so the harness controls the single statement stream that makes
    ``(seed, schema_seed, statement_index)`` a complete reproduction.
    """

    def __init__(self, rng, schema):
        self.rng = rng
        self.schema = schema

    # ------------------------------------------------------------------ #
    # FROM clauses
    # ------------------------------------------------------------------ #

    def _from_clause(self):
        """(from_sql, [(alias, table)], shape) — single or two-way join."""
        rng = self.rng
        table = rng.choice(self.schema.tables)
        if len(self.schema.tables) < 2 or rng.random() < 0.5:
            return "%s a" % table.name, [("a", table)], "single"
        other = rng.choice(self.schema.tables)
        left_cols = ["pk"] + [c.name for c in table.columns_of_type("INT")]
        right_cols = ["pk"] + [c.name for c in other.columns_of_type("INT")]
        join_kind = rng.choice(("JOIN", "JOIN", "LEFT JOIN"))
        condition = "a.%s = b.%s" % (
            rng.choice(left_cols), rng.choice(right_cols)
        )
        from_sql = "%s a %s %s b ON %s" % (
            table.name, join_kind, other.name, condition
        )
        shape = "left-join" if join_kind == "LEFT JOIN" else "join"
        return from_sql, [("a", table), ("b", other)], shape

    def _column_pool(self, sources):
        """[(rendered_ref, type_name)] over every aliased column."""
        pool = []
        for alias, table in sources:
            pool.append(("%s.pk" % alias, "INT"))
            for column in table.columns:
                pool.append(("%s.%s" % (alias, column.name), column.type_name))
        return pool

    def _columns_of(self, pool, type_name):
        return [ref for ref, t in pool if t == type_name]

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def predicate(self, pool, depth=2):
        """A random nested predicate string over the column pool."""
        rng = self.rng
        if depth > 0 and rng.random() < 0.55:
            op = rng.choice(("AND", "OR", "NOT"))
            if op == "NOT":
                return "NOT (%s)" % self.predicate(pool, depth - 1)
            return "(%s) %s (%s)" % (
                self.predicate(pool, depth - 1), op,
                self.predicate(pool, depth - 1),
            )
        return self._leaf_predicate(pool)

    def _leaf_predicate(self, pool):
        rng = self.rng
        ref, type_name = rng.choice(pool)
        roll = rng.random()
        if roll < 0.12:
            return "%s IS %sNULL" % (ref, rng.choice(("", "NOT ")))
        if type_name == "VARCHAR":
            if roll < 0.45:
                pattern = rng.choice((
                    "%a%", "%e%", "f%", "%h", "p_ne", "%ir%", "oak",
                ))
                return "%s %sLIKE '%s'" % (
                    ref, rng.choice(("", "NOT ")), pattern
                )
            if roll < 0.7:
                words = sorted({self._literal(rng, "VARCHAR")
                                for __ in range(rng.randrange(2, 5))})
                return "%s %sIN (%s)" % (
                    ref, rng.choice(("", "NOT ")), ", ".join(words)
                )
            return "%s %s %s" % (
                ref, rng.choice(("=", "<>", "<", ">=")),
                self._literal(rng, "VARCHAR"),
            )
        # INT / DOUBLE
        if roll < 0.35:
            low = rng.randrange(-6, 15)
            return "%s %sBETWEEN %d AND %d" % (
                ref, rng.choice(("", "NOT ")), low,
                low + rng.randrange(0, 9),
            )
        if roll < 0.5:
            values = sorted({rng.randrange(-5, 21)
                             for __ in range(rng.randrange(2, 5))})
            return "%s %sIN (%s)" % (
                ref, rng.choice(("", "NOT ")),
                ", ".join(str(v) for v in values),
            )
        if roll < 0.65:
            peers = self._columns_of(pool, type_name)
            if len(peers) > 1:
                other = rng.choice([p for p in peers if p != ref] or peers)
                return "%s %s %s" % (
                    ref, rng.choice(("=", "<>", "<", "<=", ">", ">=")), other
                )
        if type_name == "INT" and roll < 0.8:
            # Tiny arithmetic so expression evaluation (and its batch
            # twin) sees non-column operands.
            return "%s + %d %s %d" % (
                ref, rng.randrange(-3, 4),
                rng.choice(("<", "<=", ">", ">=", "=", "<>")),
                rng.randrange(-5, 21),
            )
        return "%s %s %s" % (
            ref, rng.choice(("=", "<>", "<", "<=", ">", ">=")),
            self._literal(rng, type_name),
        )

    def _literal(self, rng, type_name):
        if type_name == "INT":
            return str(rng.randrange(-5, 21))
        if type_name == "DOUBLE":
            return repr(rng.randrange(-10, 33) / 2.0)
        return render_literal(rng.choice(WORDS))

    # ------------------------------------------------------------------ #
    # whole queries
    # ------------------------------------------------------------------ #

    def tlp_query(self):
        """A query suitable for TLP: no LIMIT (partitions must cover)."""
        rng = self.rng
        from_sql, sources, shape = self._from_clause()
        pool = self._column_pool(sources)
        predicate = self.predicate(pool)
        roll = rng.random()
        if roll < 0.25:
            int_cols = self._columns_of(pool, "INT")
            agg_funcs = [("COUNT", "*")]
            for func in ("SUM", "MIN", "MAX"):
                if int_cols and rng.random() < 0.6:
                    agg_funcs.append((func, rng.choice(int_cols)))
            select_list = ", ".join(
                "%s(%s)" % (func, arg) for func, arg in agg_funcs
            )
            return GeneratedQuery(
                "aggregate", select_list, from_sql, predicate,
                agg_funcs=agg_funcs, shape=shape,
            )
        n = rng.randrange(1, min(3, len(pool)) + 1)
        select_list = ", ".join(
            ref for ref, __ in rng.sample(pool, n)
        )
        if roll < 0.45:
            return GeneratedQuery(
                "distinct", "DISTINCT " + select_list, from_sql, predicate,
                shape=shape,
            )
        return GeneratedQuery(
            "plain", select_list, from_sql, predicate, shape=shape,
        )

    def norec_query(self):
        """A query for plan variation: ORDER/LIMIT and GROUP BY allowed.

        When LIMIT is present the ORDER BY always ends in ``a.pk`` (and
        ``b.pk`` for joins), making the sort order total — any two
        correct plans must return the same *list*.
        """
        rng = self.rng
        from_sql, sources, shape = self._from_clause()
        pool = self._column_pool(sources)
        predicate = self.predicate(pool)
        roll = rng.random()
        if roll < 0.2:
            int_cols = self._columns_of(pool, "INT")
            group_ref = rng.choice(self._columns_of(pool, "INT")
                                   or [pool[0][0]])
            select_list = "%s, COUNT(*)" % group_ref
            having = None
            if int_cols and rng.random() < 0.5:
                having = "COUNT(*) >= %d" % rng.randrange(1, 4)
            return GeneratedQuery(
                "aggregate", select_list, from_sql, predicate,
                agg_funcs=[("COUNT", "*")], group_by=group_ref,
                having=having, shape=shape + "+group",
            )
        n = rng.randrange(1, min(3, len(pool)) + 1)
        refs = [ref for ref, __ in rng.sample(pool, n)]
        select_list = ", ".join(refs)
        order_by = None
        limit = None
        if roll < 0.55:
            keys = ["%s %s" % (rng.choice(refs),
                               rng.choice(("ASC", "DESC")))]
            for alias, __ in sources:
                keys.append("%s.pk" % alias)
            order_by = ", ".join(keys)
            if rng.random() < 0.6:
                limit = rng.randrange(1, 12)
        kind = "plain"
        if roll >= 0.55 and rng.random() < 0.3:
            kind = "distinct"
            select_list = "DISTINCT " + select_list
        return GeneratedQuery(
            kind, select_list, from_sql, predicate,
            order_by=order_by, limit=limit, shape=shape,
        )
