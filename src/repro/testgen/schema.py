"""Seeded schema generation: typed columns with NULL fractions.

One integer seed deterministically yields a handful of tables, each with
an ``INT PRIMARY KEY`` plus a random mix of INT / DOUBLE / VARCHAR
columns, a per-column NULL fraction, zero or more secondary indexes, and
a seeded initial row load.  Value domains are deliberately tiny so that
generated predicates and join conditions actually select rows — a
generator whose WHERE clauses never match tests nothing.
"""

import random

#: Words used for VARCHAR values; short and collision-prone on purpose
#: (LIKE patterns and equality joins should hit).
WORDS = ("ash", "birch", "cedar", "elm", "fir", "oak", "pine", "yew")

#: Per-column NULL fractions drawn for nullable columns.  Zero is
#: included so some columns are incidentally never NULL even without a
#: NOT NULL constraint.
NULL_FRACTIONS = (0.0, 0.1, 0.25, 0.5)

INT_LOW, INT_HIGH = -5, 20


class ColumnSpec:
    """One generated column: a name, a normalized type, a NULL fraction."""

    def __init__(self, name, type_name, null_fraction=0.0, length=None):
        self.name = name
        self.type_name = type_name  # 'INT' | 'DOUBLE' | 'VARCHAR'
        self.null_fraction = null_fraction
        self.length = length

    def ddl(self):
        if self.type_name == "VARCHAR":
            return "%s VARCHAR(%d)" % (self.name, self.length or 16)
        return "%s %s" % (self.name, self.type_name)

    def random_value(self, rng):
        """A random in-domain value (or None per the NULL fraction)."""
        if self.null_fraction and rng.random() < self.null_fraction:
            return None
        if self.type_name == "INT":
            return rng.randrange(INT_LOW, INT_HIGH + 1)
        if self.type_name == "DOUBLE":
            # Halves only: exactly representable, so cross-plan equality
            # comparisons can never pick up rounding noise.
            return rng.randrange(2 * INT_LOW, 2 * INT_HIGH + 1) / 2.0
        return rng.choice(WORDS)


class TableSpec:
    """One generated table: ``pk INT PRIMARY KEY`` + data columns."""

    def __init__(self, name, columns, indexes=(), initial_rows=0):
        self.name = name
        self.columns = list(columns)  # data columns, pk excluded
        self.indexes = list(indexes)  # [(index_name, column_name)]
        self.initial_rows = initial_rows
        self.next_pk = 0

    def all_column_names(self):
        return ["pk"] + [column.name for column in self.columns]

    def columns_of_type(self, type_name):
        return [c for c in self.columns if c.type_name == type_name]

    def create_sql(self):
        parts = ["pk INT PRIMARY KEY"]
        parts.extend(column.ddl() for column in self.columns)
        return "CREATE TABLE %s (%s)" % (self.name, ", ".join(parts))

    def index_sql(self):
        return [
            "CREATE INDEX %s ON %s (%s)" % (index_name, self.name, column)
            for index_name, column in self.indexes
        ]

    def insert_sql(self, rng):
        """One INSERT with a fresh pk and seeded column values."""
        pk = self.next_pk
        self.next_pk += 1
        values = [str(pk)]
        for column in self.columns:
            values.append(render_literal(column.random_value(rng)))
        return "INSERT INTO %s VALUES (%s)" % (self.name, ", ".join(values))


class GeneratedSchema:
    """The full generated database: tables + their DDL/load statements."""

    def __init__(self, schema_seed, tables):
        self.schema_seed = schema_seed
        self.tables = list(tables)

    def ddl_statements(self):
        statements = []
        for table in self.tables:
            statements.append(table.create_sql())
            statements.extend(table.index_sql())
        return statements

    def load_statements(self, rng):
        statements = []
        for table in self.tables:
            for __ in range(table.initial_rows):
                statements.append(table.insert_sql(rng))
        return statements


class SchemaGenerator:
    """Derives a :class:`GeneratedSchema` from one integer seed."""

    def __init__(self, schema_seed, max_tables=3, max_columns=4,
                 max_rows=48):
        self.schema_seed = schema_seed
        self.max_tables = max_tables
        self.max_columns = max_columns
        self.max_rows = max_rows

    def generate(self):
        # String seeds hash via sha512 inside random.seed(): stable
        # across processes, unlike tuple seeds (salted ``hash()``).
        rng = random.Random("schema:%d" % self.schema_seed)
        tables = []
        n_tables = rng.randrange(2, self.max_tables + 1)
        for t in range(n_tables):
            columns = []
            n_columns = rng.randrange(2, self.max_columns + 1)
            for c in range(n_columns):
                type_name = rng.choice(("INT", "INT", "DOUBLE", "VARCHAR"))
                columns.append(ColumnSpec(
                    "c%d" % c, type_name,
                    null_fraction=rng.choice(NULL_FRACTIONS),
                    length=16 if type_name == "VARCHAR" else None,
                ))
            indexes = []
            for k in range(rng.randrange(0, 3)):
                column = rng.choice(columns)
                name = "ix_t%d_%d_%s" % (t, k, column.name)
                if any(existing == column.name for __, existing in indexes):
                    continue
                indexes.append((name, column.name))
            rows = rng.randrange(self.max_rows // 2, self.max_rows + 1)
            tables.append(TableSpec("t%d" % t, columns, indexes, rows))
        return GeneratedSchema(self.schema_seed, tables)


def render_literal(value):
    """Render a Python value as a SQL literal of this dialect."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return "'%s'" % str(value).replace("'", "''")


def random_dml(rng, table):
    """One seeded DML statement (INSERT / UPDATE / DELETE) for ``table``.

    Updates and deletes key off small pk / value ranges so they touch
    rows that actually exist; inserts always use a fresh pk.
    """
    roll = rng.random()
    if roll < 0.5 or not table.columns:
        return table.insert_sql(rng)
    column = rng.choice(table.columns)
    if roll < 0.8:
        value = render_literal(column.random_value(rng))
        low = rng.randrange(0, max(1, table.next_pk))
        return "UPDATE %s SET %s = %s WHERE pk BETWEEN %d AND %d" % (
            table.name, column.name, value, low, low + rng.randrange(1, 4)
        )
    victim = rng.randrange(0, max(1, table.next_pk))
    return "DELETE FROM %s WHERE pk = %d" % (table.name, victim)
