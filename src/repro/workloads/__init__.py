"""Workload generators for the experiments and examples.

* :mod:`~repro.workloads.oltp` — uniform and Zipf-skewed key/value OLTP
  tables and query streams;
* :mod:`~repro.workloads.star` — a star schema (fact + dimensions) for
  join and parallelism experiments;
* :mod:`~repro.workloads.chains` — N-table FK chains for the join
  enumeration experiments (the paper's 100-way join anecdote);
* :mod:`~repro.workloads.adversarial` — seeded DML sessions over
  :mod:`repro.testgen` generated schemas, for the metamorphic soak.
"""

from repro.workloads.adversarial import (
    adversarial_dml_statements,
    adversarial_sessions,
)
from repro.workloads.oltp import (
    load_kv_table,
    point_query_stream,
    range_query_stream,
    zipf_choices,
)
from repro.workloads.star import load_star_schema, star_join_sql
from repro.workloads.chains import chain_join_sql, load_chain_schema

__all__ = [
    "adversarial_dml_statements",
    "adversarial_sessions",
    "load_kv_table",
    "point_query_stream",
    "range_query_stream",
    "zipf_choices",
    "load_star_schema",
    "star_join_sql",
    "load_chain_schema",
    "chain_join_sql",
]
