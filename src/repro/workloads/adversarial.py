"""Adversarial scheduler sessions over a generated schema.

Bridges :mod:`repro.testgen` and the workload scheduler: seeded DML
statement lists over a :class:`~repro.testgen.schema.GeneratedSchema`,
packaged as session sources for :class:`~repro.engine.WorkloadScheduler`.

Statements are **pre-generated** from the caller's rng before any
session runs: pk allocation and value choice must not depend on how the
scheduler interleaves the sessions, or the run log stops being a pure
function of the seeds.
"""

from repro.testgen.schema import random_dml


def adversarial_dml_statements(rng, schema, count):
    """``count`` seeded DML statements across the schema's tables."""
    return [
        random_dml(rng, rng.choice(schema.tables))
        for __ in range(count)
    ]


def adversarial_sessions(rng, schema, n_sessions, statements_per_session):
    """[(name, source)] session specs with pre-generated statements."""
    sessions = []
    for k in range(n_sessions):
        statements = adversarial_dml_statements(
            rng, schema, statements_per_session
        )

        def source(connection, statements=statements):
            for sql in statements:
                yield sql

        sessions.append(("adv%d" % k, source))
    return sessions
