"""N-table foreign-key chains for join-enumeration experiments.

The paper's anecdote: "a 100-way join query against a small TPC-H database
can be optimized and executed ... with as little as 3 MB of buffer pool,
with only 1 MB needed for optimization."  These helpers build a chain of N
small tables, each referencing the next, and the N-way join query over it.
"""


def load_chain_schema(server, n_tables, rows_per_table=8):
    """Create tables t0 .. t(n-1); ``t<i>.next_id`` references ``t<i+1>``."""
    if n_tables < 1:
        raise ValueError("need at least one table")
    conn = server.connect()
    for index in range(n_tables):
        if index < n_tables - 1:
            conn.execute(
                "CREATE TABLE t%d (id INT PRIMARY KEY, next_id INT, "
                "FOREIGN KEY (next_id) REFERENCES t%d (id))"
                % (index, index + 1)
            )
        else:
            conn.execute(
                "CREATE TABLE t%d (id INT PRIMARY KEY, next_id INT)" % index
            )
    for index in range(n_tables):
        server.load_table(
            "t%d" % index,
            [(row, row % rows_per_table) for row in range(rows_per_table)],
        )
    return conn


def chain_join_sql(n_tables):
    """``SELECT COUNT(*)`` joining the whole chain."""
    tables = ", ".join("t%d" % index for index in range(n_tables))
    conditions = " AND ".join(
        "t%d.next_id = t%d.id" % (index, index + 1)
        for index in range(n_tables - 1)
    )
    if conditions:
        return "SELECT COUNT(*) FROM %s WHERE %s" % (tables, conditions)
    return "SELECT COUNT(*) FROM %s" % (tables,)
