"""OLTP-style key/value workloads with controllable skew."""

import random


def zipf_choices(n_values, skew, count, seed=0):
    """``count`` draws from [0, n_values) with Zipf-like skew.

    ``skew`` 0.0 is uniform; larger values concentrate mass on low keys.
    """
    rng = random.Random(seed)
    if skew <= 0:
        return [rng.randrange(n_values) for __ in range(count)]
    weights = [1.0 / (rank + 1) ** skew for rank in range(n_values)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    draws = []
    for __ in range(count):
        point = rng.random()
        lo, hi = 0, n_values - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        draws.append(lo)
    return draws


def load_kv_table(server, name="kv", n_rows=10_000, n_distinct_values=100,
                  skew=0.0, seed=0):
    """Create and bulk-load a simple key/value table.

    ``k`` is the (unique) primary key; ``v`` follows the requested skew;
    ``pad`` widens the rows so page counts are realistic.
    """
    conn = server.connect()
    conn.execute(
        "CREATE TABLE %s (k INT PRIMARY KEY, v INT, pad VARCHAR(40))" % name
    )
    values = zipf_choices(n_distinct_values, skew, n_rows, seed)
    server.load_table(
        name,
        [(i, values[i], "pad-%08d" % i) for i in range(n_rows)],
    )
    return conn


def point_query_stream(table, key_column, keys):
    """SQL strings for point lookups over the given keys."""
    return [
        "SELECT v FROM %s WHERE %s = %d" % (table, key_column, key)
        for key in keys
    ]


def range_query_stream(table, column, ranges):
    """SQL strings for range scans over (low, high) pairs."""
    return [
        "SELECT COUNT(*) FROM %s WHERE %s BETWEEN %d AND %d"
        % (table, column, low, high)
        for low, high in ranges
    ]
