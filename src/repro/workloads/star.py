"""A star schema: one fact table referencing several dimensions."""


def load_star_schema(server, n_facts=20_000, dims=((("dim_date", 365)),
                                                   ("dim_cust", 500),
                                                   ("dim_part", 200))):
    """Create fact + dimension tables and load them.

    ``dims`` is a sequence of (table_name, cardinality).  The fact table
    carries one FK column per dimension plus a measure.
    """
    conn = server.connect()
    dims = list(dims)
    for dim_name, cardinality in dims:
        conn.execute(
            "CREATE TABLE %s (id INT PRIMARY KEY, label VARCHAR(20))"
            % dim_name
        )
        server.load_table(
            dim_name,
            [(i, "%s-%d" % (dim_name, i)) for i in range(cardinality)],
        )
    fk_columns = ", ".join(
        "%s_id INT" % dim_name for dim_name, __ in dims
    )
    fk_constraints = ", ".join(
        "FOREIGN KEY (%s_id) REFERENCES %s (id)" % (dim_name, dim_name)
        for dim_name, __ in dims
    )
    conn.execute(
        "CREATE TABLE fact (id INT PRIMARY KEY, %s, measure DOUBLE, %s)"
        % (fk_columns, fk_constraints)
    )
    rows = []
    for i in range(n_facts):
        row = [i]
        for offset, (__, cardinality) in enumerate(dims):
            row.append((i * (offset + 3)) % cardinality)
        row.append(float(i % 1000))
        rows.append(tuple(row))
    server.load_table("fact", rows)
    return conn


def star_join_sql(dims, filters=None):
    """A star join over ``dims`` with optional dimension filters."""
    dim_names = [dim_name for dim_name, __ in dims]
    joins = " ".join(
        "JOIN %s ON fact.%s_id = %s.id" % (name, name, name)
        for name in dim_names
    )
    where = (" WHERE " + " AND ".join(filters)) if filters else ""
    return "SELECT COUNT(*) FROM fact %s%s" % (joins, where)
