"""The ``python -m repro.analysis`` CLI: output format and exit codes."""

import os
import subprocess
import sys

from repro.analysis.lint import main

CLEAN = "VALUE = 1\n"
DIRTY = "import time\n\ndef f(x=[]):\n    return x\n"


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main([path]) == 0
    assert capsys.readouterr().out == ""


def test_violations_exit_one_with_locations(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "%s:1:1: SIM001" % path in out
    assert "SIM006" in out
    assert "2 violations found" in out


def test_directory_walk(tmp_path, capsys):
    write(tmp_path, "a.py", CLEAN)
    write(tmp_path, "b.py", "import time\n")
    assert main([str(tmp_path)]) == 1
    assert "b.py:1:1: SIM001" in capsys.readouterr().out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2


def test_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main(["--select", "SIM999", path]) == 2


def test_select_runs_only_chosen_rules(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--select", "SIM006", path]) == 1
    out = capsys.readouterr().out
    assert "SIM006" in out and "SIM001" not in out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM003", "SIM007"):
        assert rule_id in out


def test_module_invocation_on_repo_tree():
    """The CI gate: ``python -m repro.analysis src/`` exits 0."""
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", src],
        cwd=repo_root, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_baseline_suppresses_known_violations(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", "import time\n")
    main([path])
    line = capsys.readouterr().out.splitlines()[0]
    # Fingerprint = path:rule:message (position-independent).
    prefix, message = line.split(": ", 1)
    file_path = prefix.rsplit(":", 2)[0]
    rule_id, text = message.split(" ", 1)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "# accepted legacy findings\n%s:%s:%s\n" % (file_path, rule_id, text)
    )
    assert main(["--baseline", str(baseline), path]) == 0
    assert capsys.readouterr().out == ""


def test_baseline_does_not_hide_new_violations(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("%s:SIM001:module 'time' is banned\n" % path)
    # Whatever SIM001's exact message is, SIM006 is not baselined.
    assert main(["--baseline", str(baseline), path]) == 1
    assert "SIM006" in capsys.readouterr().out


def test_missing_baseline_file_is_usage_error(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main(["--baseline", str(tmp_path / "nope.txt"), path]) == 2


def test_stale_baseline_fingerprint_fails_with_diff(tmp_path, capsys):
    """A baseline entry matching no current violation is drift: the
    finding was fixed and the suppression must be retired."""
    path = write(tmp_path, "clean.py", CLEAN)
    baseline = tmp_path / "baseline.txt"
    stale_entry = "%s:SIM001:module 'time' is banned" % path
    baseline.write_text(stale_entry + "\n")
    assert main(["--baseline", str(baseline), path]) == 1
    out = capsys.readouterr().out
    assert "stale baseline" in out
    assert stale_entry in out


def test_stale_guard_skips_unselected_rules(tmp_path, capsys):
    """With --select, entries for rules that did not run are not stale."""
    path = write(tmp_path, "clean.py", CLEAN)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("%s:SIM006:whatever\n" % path)
    assert main(["--select", "SIM001", "--baseline", str(baseline), path]) == 0


def test_stale_guard_skips_unscanned_paths(tmp_path, capsys):
    """Entries for files outside the scanned roots are not stale."""
    path = write(tmp_path, "clean.py", CLEAN)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("/elsewhere/old.py:SIM001:module 'time' is banned\n")
    assert main(["--baseline", str(baseline), path]) == 0


def test_matched_baseline_entry_is_not_stale(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", "import time\n")
    main([path])
    line = capsys.readouterr().out.splitlines()[0]
    prefix, message = line.split(": ", 1)
    file_path = prefix.rsplit(":", 2)[0]
    rule_id, text = message.split(" ", 1)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("%s:%s:%s\n" % (file_path, rule_id, text))
    assert main(["--baseline", str(baseline), path]) == 0
    assert "stale" not in capsys.readouterr().out


def test_repo_baseline_is_empty():
    """The committed baseline carries no suppressions: new SIM010–SIM013
    findings in src/ fail CI outright."""
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    baseline = os.path.join(repo_root, "lint-baseline.txt")
    with open(baseline) as handle:
        entries = [
            line.strip() for line in handle
            if line.strip() and not line.startswith("#")
        ]
    assert entries == []
