"""SIM010–SIM013: each interprocedural rule flags a planted concurrency
bug and stays quiet on the disciplined counterpart."""

import textwrap

import repro.analysis.conc  # noqa: F401  (registers the rules)
import repro.analysis.rules  # noqa: F401
from repro.analysis.conc import ProjectIndex, build_index
from repro.analysis.lint import Linter

import ast


def lint(source, module_name="repro.engine.fake", select=None):
    return Linter(select=select).check_source(
        textwrap.dedent(source), path="fake.py", module_name=module_name
    )


def codes(source, **kwargs):
    return [violation.rule_id for violation in lint(source, **kwargs)]


def index_of(source, module_name="repro.engine.fake"):
    tree = ast.parse(textwrap.dedent(source))
    return build_index([(module_name, tree)])


class TestProjectIndex:
    def test_direct_yield_seed_marks_caller(self):
        index = index_of("""
        def poke(self):
            self.scheduler.yield_point("sched.statement")
        """)
        assert index.name_may_yield("poke")

    def test_transitive_yield_through_call_graph(self):
        index = index_of("""
        def inner(self):
            self.scheduler.yield_point("pool.miss")

        def middle(self):
            self.inner()

        def outer(self):
            self.middle()
        """)
        assert index.name_may_yield("outer")

    def test_park_is_a_strict_subset_of_yield(self):
        index = index_of("""
        def offers(self):
            self.scheduler.yield_point("sched.statement")

        def parks(self):
            self.scheduler.wait_for_lock(self.waiter)
        """)
        assert index.name_may_yield("offers")
        assert not index.name_may_park("offers")
        assert index.name_may_park("parks")

    def test_container_mutators_never_resolve_as_yield(self):
        # ``queue.remove(...)`` must not resolve to a project function
        # that happens to be named ``remove`` and yields.
        index = index_of("""
        def remove(self, key):
            self.pool.yield_hook(key)

        def cleanup(self, queue, item):
            queue.remove(item)
        """)
        assert index.name_may_yield("remove")
        assert not index.name_may_yield("cleanup")

    def test_coverage_requires_every_call_site_critical(self):
        index = index_of("""
        def _grant(self, key):
            self.table[key] = 1

        def safe(self):
            with self.scheduler.critical_section():
                self._grant(1)

        def unsafe(self):
            self._grant(2)
        """)
        assert not index.is_covered("repro.engine.fake._grant")

    def test_covered_helper_and_transitive_coverage(self):
        index = index_of("""
        def _install(self, key):
            self.table[key] = 1

        def _grant_next(self, key):
            self._install(key)

        def release(self):
            with self._critical():
                self._grant_next(1)
        """)
        assert index.is_covered("repro.engine.fake._grant_next")
        assert index.is_covered("repro.engine.fake._install")

    def test_entry_points_are_never_covered(self):
        index = index_of("""
        def lonely(self):
            self.table[1] = 2
        """)
        assert not index.is_covered("repro.engine.fake.lonely")


class TestSIM010NoParkInCritical:
    def test_direct_park_inside_critical_fires(self):
        source = """
        def wake(self):
            with self.scheduler.critical_section():
                self.scheduler.wait_for_lock(self.waiter)
        """
        assert "SIM010" in codes(source)

    def test_transitive_park_inside_critical_fires(self):
        source = """
        def blocked(self):
            self.scheduler.wait_for_lock(self.waiter)

        def outer(self):
            with self.scheduler.critical_section():
                self.blocked()
        """
        assert "SIM010" in codes(source)

    def test_pool_probe_inside_critical_is_clean(self):
        # Probes may *offer* the baton (pool miss) but offers are
        # suppressed inside the critical section — only parks are unsafe.
        source = """
        def probe(self, key):
            with self._critical():
                return self._table.get(key)
        """
        assert codes(source) == []

    def test_park_outside_critical_is_clean(self):
        source = """
        def wait(self):
            self.scheduler.wait_for_lock(self.waiter)
        """
        assert codes(source) == []


class TestSIM011TornSharedWrites:
    TORN = """
    def publish(self, key, txn):
        self._waiters.setdefault(key, []).append(txn)
        self.scheduler.yield_point("sched.statement")
        self._waits_for[txn] = set()
    """

    def test_straddling_yield_fires(self):
        assert "SIM011" in codes(self.TORN)

    def test_critical_section_coverage_is_clean(self):
        source = """
        def publish(self, key, txn):
            with self.scheduler.critical_section():
                self._waiters.setdefault(key, []).append(txn)
                self.scheduler.yield_point("sched.statement")
                self._waits_for[txn] = set()
        """
        assert codes(source) == []

    def test_covered_callee_is_clean(self):
        # _grant is only ever called under a critical section, so the
        # coverage fixpoint suppresses the straddle inside it.
        source = """
        def _grant(self, key):
            self._waiters[key] = 1
            self.scheduler.yield_point("pool.miss")
            self._waits_for[key] = 2

        def release(self, key):
            with self._critical():
                self._grant(key)
        """
        assert codes(source) == []

    def test_different_structures_do_not_pair(self):
        source = """
        def mixed(self, key):
            self._waiters[key] = 1
            self.scheduler.yield_point("sched.statement")
            self._versions[key] = 2
        """
        assert codes(source) == []

    def test_transitive_yield_between_writes_fires(self):
        source = """
        def _refill(self):
            self.pool.yield_hook(1)

        def torn(self, key):
            self._versions[key] = 1
            self._refill()
            del self._versions[key]
        """
        assert "SIM011" in codes(source)

    def test_noqa_suppresses_the_protocol_straddle(self):
        source = """
        def publish(self, key, txn):
            self._waiters.setdefault(key, []).append(txn)
            self.scheduler.wait_for_lock(txn)  # noqa: SIM011
            self._waits_for[txn] = set()
        """
        assert codes(source) == []


class TestSIM012LockDiscipline:
    def test_release_not_in_finally_fires(self):
        source = """
        def ddl(self, txn, name):
            self.lock_manager.acquire_table(txn, name, mode="X")
            self.do_work(name)
            self.lock_manager.release_all(txn)
        """
        assert "SIM012" in codes(source)

    def test_try_finally_release_is_clean(self):
        source = """
        def ddl(self, txn, name):
            self.lock_manager.acquire_table(txn, name, mode="X")
            try:
                self.do_work(name)
            finally:
                self.lock_manager.release_all(txn)
        """
        assert codes(source) == []

    def test_row_lock_before_table_lock_fires(self):
        source = """
        def dml(self, txn, table, row):
            self.lock_manager.acquire(txn, table, row)
            self.lock_manager.acquire_table(txn, table)
        """
        assert "SIM012" in codes(source)

    def test_table_then_row_order_is_clean(self):
        source = """
        def dml(self, txn, table, row):
            self.lock_manager.acquire_table(txn, table)
            self.lock_manager.acquire(txn, table, row)
        """
        assert codes(source) == []

    def test_release_only_function_is_clean(self):
        source = """
        def commit(self, txn):
            self.lock_manager.release_all(txn)
        """
        assert codes(source) == []


class TestSIM013SnapshotReadLocks:
    def test_snapshot_plus_row_lock_fires(self):
        source = """
        def read(self, txn, table, row):
            lsn = self.server.versions.open_snapshot()
            self.server.lock_manager.acquire(txn, table, row)
        """
        assert "SIM013" in codes(source)

    def test_snapshot_without_locks_is_clean(self):
        source = """
        def read(self, table):
            lsn = self.server.versions.open_snapshot()
            try:
                return list(table.storage.scan(snapshot=lsn))
            finally:
                self.server.versions.close_snapshot(lsn)
        """
        assert codes(source) == []

    def test_operator_touching_lock_manager_fires(self):
        source = """
        def execute(self, ctx):
            ctx.server.lock_manager.acquire(1, "t", row_id)
            yield {}
        """
        assert "SIM013" in codes(source, module_name="repro.exec.fake")

    def test_lock_free_operator_is_clean(self):
        source = """
        def execute(self, ctx):
            for row_id, row in self.storage.scan(snapshot=ctx.snapshot_lsn):
                yield {self.qid: row}
        """
        assert codes(source, module_name="repro.exec.fake") == []


class TestRealTreeStaysClean:
    def test_conc_rules_clean_on_src(self):
        linter = Linter(select={"SIM010", "SIM011", "SIM012", "SIM013"})
        violations = linter.check_paths(["src"])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_project_index_sees_the_engine(self):
        linter = Linter()
        linter.check_paths(["src"])
        project = linter.project
        assert isinstance(project, ProjectIndex)
        # The load-bearing classifications behind SIM010/SIM011:
        assert project.name_may_park("wait_for_lock")
        assert project.name_may_yield("fetch")
        assert not project.name_may_park("fetch")
