"""Each SIM rule fires on a minimal violating snippet and stays quiet on
the compliant counterpart."""

import textwrap

import repro.analysis.rules  # noqa: F401  (registers the rules)
from repro.analysis.lint import Linter, module_name_for


def lint(source, module_name="repro.exec.fake", select=None):
    return Linter(select=select).check_source(
        textwrap.dedent(source), path="fake.py", module_name=module_name
    )


def codes(source, **kwargs):
    return [violation.rule_id for violation in lint(source, **kwargs)]


class TestSIM001WallClock:
    def test_import_time_fires(self):
        assert "SIM001" in codes("import time\n")

    def test_from_time_import_fires(self):
        assert "SIM001" in codes("from time import sleep\n")

    def test_time_call_fires(self):
        assert "SIM001" in codes("start = time.time()\n")

    def test_datetime_now_fires(self):
        assert "SIM001" in codes("stamp = datetime.datetime.now()\n")

    def test_global_random_fires(self):
        assert "SIM001" in codes("x = random.random()\n")

    def test_from_random_import_fires(self):
        assert "SIM001" in codes("from random import randint\n")

    def test_seeded_random_is_clean(self):
        source = """
        import random

        rng = random.Random(7)
        value = rng.random()
        """
        assert codes(source) == []

    def test_from_random_import_random_class_is_clean(self):
        assert codes("from random import Random\n") == []


class TestSIM002FloatEquality:
    def test_float_literal_eq_fires(self):
        assert "SIM002" in codes("flag = x == 0.5\n")

    def test_float_literal_noteq_fires(self):
        assert "SIM002" in codes("flag = x != 1.0\n")

    def test_cost_name_eq_fires(self):
        assert "SIM002" in codes("flag = best_cost == other.cost\n")

    def test_selectivity_name_eq_fires(self):
        assert "SIM002" in codes("flag = selectivity == s\n")

    def test_int_literal_is_clean(self):
        assert codes("flag = x == 1\n") == []

    def test_inequality_is_clean(self):
        assert codes("flag = cost <= other_cost\n") == []


class TestSIM003GuardedPins:
    def test_bare_pin_expression_fires(self):
        source = """
        def touch(pool, file):
            pool.fetch(file, 1)
        """
        assert "SIM003" in codes(source)

    def test_unguarded_assignment_fires(self):
        source = """
        def read(self, file):
            frame = self.pool.fetch(file, 1)
            return frame.payload
        """
        assert "SIM003" in codes(source)

    def test_try_finally_is_clean(self):
        source = """
        def read(self, file):
            frame = self.pool.fetch(file, 1)
            try:
                return frame.payload
            finally:
                self.pool.unpin(frame)
        """
        assert codes(source) == []

    def test_pin_guard_is_clean(self):
        source = """
        def create(self, file):
            with self.pool.pin_guard(self.pool.new_page(file)) as frame:
                return frame.page_no
        """
        assert codes(source) == []

    def test_return_position_wrapper_is_clean(self):
        source = """
        def _read(self, page_no):
            return self.pool.fetch(self.file, page_no)
        """
        assert codes(source) == []

    def test_rule_scoped_to_exec_and_storage(self):
        source = """
        def touch(pool, file):
            pool.fetch(file, 1)
        """
        assert codes(source, module_name="repro.buffer.pool") == []


class TestSIM004MetricNames:
    def test_bad_convention_fires(self):
        assert "SIM004" in codes('metrics.counter("BadName").inc()\n')

    def test_missing_subsystem_fires(self):
        assert "SIM004" in codes('metrics.counter("hits").inc()\n')

    def test_computed_name_fires(self):
        assert "SIM004" in codes("metrics.counter(name).inc()\n")

    def test_template_without_prefix_fires(self):
        assert "SIM004" in codes('metrics.counter("%s" % n).inc()\n')

    def test_literal_name_is_clean(self):
        assert codes('metrics.counter("pool.hits").inc()\n') == []

    def test_prefixed_template_is_clean(self):
        assert codes('registry.register_probe("pool.%s" % n, probe)\n') == []

    def test_prefixed_concatenation_is_clean(self):
        assert codes('metrics.counter("plancache." + n).inc(1)\n') == []

    def test_non_metrics_receiver_ignored(self):
        assert codes('tally.counter("whatever")\n') == []


class TestSIM005OperatorProtocol:
    def test_operator_without_execute_fires(self):
        source = """
        class BrokenOp(Operator):
            def helper(self):
                return 1
        """
        assert "SIM005" in codes(source)

    def test_memory_pages_without_relinquish_fires(self):
        source = """
        class HoarderOp(Operator):
            memory_pages = 0

            def execute(self, ctx):
                yield from ()
        """
        assert "SIM005" in codes(source)

    def test_full_protocol_is_clean(self):
        source = """
        class GoodOp(Operator):
            def execute(self, ctx):
                yield from ()

            @property
            def memory_pages(self):
                return 0

            def relinquish_memory(self):
                return 0
        """
        assert codes(source) == []

    def test_execute_batches_without_execute_fires(self):
        source = """
        class BatchOnly:
            def execute_batches(self, ctx):
                yield from ()
        """
        assert "SIM005" in codes(source)

    def test_both_protocols_are_clean(self):
        source = """
        class DualOp(Operator):
            def execute(self, ctx):
                yield from ()

            def execute_batches(self, ctx):
                yield from ()
        """
        assert codes(source) == []

    def test_row_call_inside_execute_batches_fires(self):
        source = """
        class MixerOp(Operator):
            def execute(self, ctx):
                yield from ()

            def execute_batches(self, ctx):
                for row in self.child.execute(ctx):
                    yield row
        """
        assert "SIM005" in codes(source)

    def test_shimmed_row_call_is_clean(self):
        source = """
        class ShimOp(Operator):
            def execute(self, ctx):
                yield from ()

            def execute_batches(self, ctx):
                return rows_to_batches(self.execute(ctx), ctx.batch_rows)
        """
        assert codes(source) == []

    def test_row_call_outside_execute_batches_is_clean(self):
        source = """
        class RunnerOp(Operator):
            def execute(self, ctx):
                yield from self.child.execute(ctx)
        """
        assert codes(source) == []


class TestSIM006MutableDefaults:
    def test_list_default_fires(self):
        assert "SIM006" in codes("def f(items=[]):\n    return items\n")

    def test_dict_call_default_fires(self):
        assert "SIM006" in codes("def f(opts=dict()):\n    return opts\n")

    def test_kwonly_default_fires(self):
        assert "SIM006" in codes("def f(*, seen={}):\n    return seen\n")

    def test_none_default_is_clean(self):
        assert codes("def f(items=None):\n    return items\n") == []


class TestSIM007SwallowedExceptions:
    def test_bare_except_pass_fires(self):
        source = """
        try:
            work()
        except:
            pass
        """
        assert "SIM007" in codes(source)

    def test_broad_except_pass_fires(self):
        source = """
        try:
            work()
        except Exception:
            pass
        """
        assert "SIM007" in codes(source)

    def test_specific_except_pass_is_clean(self):
        source = """
        try:
            work()
        except KeyError:
            pass
        """
        assert codes(source) == []

    def test_handled_broad_except_is_clean(self):
        source = """
        try:
            work()
        except Exception:
            record_failure()
        """
        assert codes(source) == []


class TestSIM009CatalogLockDiscipline:
    ENGINE = "repro.engine.fake"

    def test_unlocked_add_table_fires(self):
        source = """
        def create(self, schema):
            self.server.catalog.add_table(schema)
        """
        assert "SIM009" in codes(source, module_name=self.ENGINE)

    def test_unlocked_drop_index_fires(self):
        source = """
        def drop(self, name):
            catalog.drop_index(name)
        """
        assert "SIM009" in codes(source, module_name=self.ENGINE)

    def test_ddl_lock_helper_satisfies(self):
        source = """
        def create(self, schema):
            with self._ddl_lock(schema.name):
                self.server.catalog.add_table(schema)
        """
        assert codes(source, module_name=self.ENGINE) == []

    def test_acquire_table_satisfies(self):
        source = """
        def create(self, schema):
            self.server.lock_manager.acquire_table(1, schema.name, mode=X)
            self.server.catalog.add_table(schema)
        """
        assert codes(source, module_name=self.ENGINE) == []

    def test_non_catalog_receiver_is_clean(self):
        source = """
        def bookkeeping(self, schema):
            self.registry.add_table(schema)
        """
        assert codes(source, module_name=self.ENGINE) == []

    def test_outside_engine_package_is_clean(self):
        source = """
        def create(self, schema):
            self.server.catalog.add_table(schema)
        """
        assert codes(source, module_name="repro.recovery.fake") == []


class TestFramework:
    def test_noqa_suppresses_all(self):
        assert codes("import time  # noqa\n") == []

    def test_noqa_with_matching_code(self):
        assert codes("def f(x=[]):  # noqa: SIM006\n    return x\n") == []

    def test_noqa_with_other_code_keeps_violation(self):
        assert "SIM006" in codes(
            "def f(x=[]):  # noqa: SIM001\n    return x\n"
        )

    def test_syntax_error_reported_as_e901(self):
        assert codes("def broken(:\n") == ["E901"]

    def test_select_restricts_rules(self):
        source = "import time\ndef f(x=[]):\n    return x\n"
        assert codes(source, select={"SIM006"}) == ["SIM006"]

    def test_violation_render_format(self):
        violations = lint("import time\n")
        assert violations and violations[0].render().startswith(
            "fake.py:1:1: SIM001 "
        )

    def test_module_name_for(self):
        assert module_name_for("src/repro/exec/spill.py") == "repro.exec.spill"
        assert module_name_for("src/repro/exec/__init__.py") == "repro.exec"
