"""The deterministic race sanitizer: lockset span mechanics in isolation,
then a planted torn version-chain write under the real scheduler."""

import pytest

from repro import Server, ServerConfig
from repro.analysis.races import (
    CRITICAL_TOKEN,
    RaceInterleavingError,
    RaceSanitizer,
    tap,
)
from repro.engine import WorkloadScheduler
from repro.engine.scheduler import DONE, YIELD_STATEMENT


class FakeSession:
    def __init__(self, name):
        self.name = name


class FakeScheduler:
    """Just enough scheduler surface for span bookkeeping."""

    def __init__(self):
        self.current = None
        self.critical = 0

    def running_session(self):
        return self.current

    def in_critical_section(self):
        return self.critical > 0


def make_sanitizer(guards=None):
    scheduler = FakeScheduler()
    sanitizer = RaceSanitizer(
        scheduler_fn=lambda: scheduler,
        lock_guards_fn=(lambda txn_id: guards[txn_id]) if guards else None,
    )
    return scheduler, sanitizer


class TestSpanMechanics:
    def test_inert_without_scheduler(self):
        sanitizer = RaceSanitizer(scheduler_fn=lambda: None)
        assert sanitizer.begin("versions", 1, "w") is None

    def test_inert_without_running_session(self):
        __, sanitizer = make_sanitizer()
        assert sanitizer.begin("versions", 1, "w") is None
        assert sanitizer.open_spans() == 0

    def test_end_closes_the_span(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        span = sanitizer.begin("versions", 1, "w")
        assert sanitizer.open_spans() == 1
        sanitizer.end(span)
        assert sanitizer.open_spans() == 0

    def test_write_write_interleaving_raises(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("versions", ("t", 0), "w")
        scheduler.current = FakeSession("s2")  # baton switched mid-span
        with pytest.raises(RaceInterleavingError):
            sanitizer.begin("versions", ("t", 0), "w")

    def test_write_read_interleaving_raises(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("versions", ("t", 0), "w")
        scheduler.current = FakeSession("s2")
        with pytest.raises(RaceInterleavingError):
            sanitizer.begin("versions", ("t", 0), "r")

    def test_read_read_is_not_a_race(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("versions", ("t", 0), "r")
        scheduler.current = FakeSession("s2")
        assert sanitizer.begin("versions", ("t", 0), "r") is not None

    def test_different_keys_do_not_conflict(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("versions", ("t", 0), "w")
        scheduler.current = FakeSession("s2")
        assert sanitizer.begin("versions", ("t", 1), "w") is not None

    def test_same_session_reentrancy_is_fine(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("versions", ("t", 0), "w")
        assert sanitizer.begin("versions", ("t", 0), "w") is not None

    def test_shared_guard_token_suppresses(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("locks", "k", "w", guards={("t", 1, 0)})
        scheduler.current = FakeSession("s2")
        assert sanitizer.begin(
            "locks", "k", "w", guards={("t", 1, 0)}
        ) is not None

    def test_disjoint_guards_still_race(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        sanitizer.begin("locks", "k", "w", guards={"a"})
        scheduler.current = FakeSession("s2")
        with pytest.raises(RaceInterleavingError):
            sanitizer.begin("locks", "k", "w", guards={"b"})

    def test_critical_section_is_an_implicit_guard(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.critical = 1
        scheduler.current = FakeSession("s1")
        span = sanitizer.begin("locks", "k", "w")
        assert CRITICAL_TOKEN in span.guards
        scheduler.current = FakeSession("s2")
        assert sanitizer.begin("locks", "k", "w") is not None

    def test_lock_guards_fn_supplies_the_lockset(self):
        guards = {7: {("t", 1, 0)}, 8: {("t", 2, 0)}}
        scheduler, sanitizer = make_sanitizer(guards)
        scheduler.current = FakeSession("s1")
        span = sanitizer.begin("versions", "k", "w", txn_id=7)
        assert ("t", 1, 0) in span.guards
        scheduler.current = FakeSession("s2")
        with pytest.raises(RaceInterleavingError):
            sanitizer.begin("versions", "k", "w", txn_id=8)

    def test_tap_is_null_safe(self):
        with tap(None, "versions", 1, "w"):
            pass

    def test_access_context_manager_closes_on_error(self):
        scheduler, sanitizer = make_sanitizer()
        scheduler.current = FakeSession("s1")
        with pytest.raises(RuntimeError):
            with sanitizer.access("versions", 1, "w"):
                raise RuntimeError("boom")
        assert sanitizer.open_spans() == 0


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    return Server(ServerConfig(**kwargs), sanitize=True)


def seed_table(server, rows=4):
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, 0) for i in range(rows)])
    return connection


class TestPlantedTornWrite:
    def test_torn_version_chain_write_trips_under_the_scheduler(self):
        """Two sessions interleave inside an unguarded version-chain
        mutation (the span is deliberately held across a yield point):
        the second session's access must raise, deterministically."""
        server = make_server()
        seed_table(server)
        scheduler = WorkloadScheduler(server, seed=7, switch_rate=1.0)
        holder = [scheduler]

        def torn(conn):
            races = server.races
            span = races.begin("versions", ("t", 0), "w")
            assert span is not None
            try:
                # Planted bug: the baton is handed over while the
                # version-chain mutation is still open.
                holder[0].yield_point(YIELD_STATEMENT, always=True)
            finally:
                races.end(span)

        torn.__name__ = "torn-write"
        scheduler.add_session("s1", [torn])
        scheduler.add_session("s2", [torn])
        with pytest.raises(RaceInterleavingError):
            scheduler.run()

    def test_guarded_spans_do_not_trip(self):
        """The same interleaving on different keys runs clean."""
        server = make_server()
        seed_table(server)
        scheduler = WorkloadScheduler(server, seed=7, switch_rate=1.0)
        holder = [scheduler]

        def writer(key):
            def body(conn):
                races = server.races
                with races.access("versions", ("t", key), "w"):
                    holder[0].yield_point(YIELD_STATEMENT, always=True)
            body.__name__ = "writer-%d" % key
            return body

        scheduler.add_session("s1", [writer(0)])
        scheduler.add_session("s2", [writer(1)])
        scheduler.run()
        assert all(s.status == DONE for s in scheduler.sessions)

    def test_real_workload_runs_clean_with_sanitizer(self):
        """The engine's own taps never fire on a disciplined workload."""
        server = make_server()
        seed_table(server)
        scheduler = WorkloadScheduler(server, seed=11, switch_rate=0.8)

        def transfers(conn):
            for __ in range(3):
                yield "BEGIN"
                yield "UPDATE t SET v = v + 1 WHERE id = 0"
                yield "UPDATE t SET v = v - 1 WHERE id = 1"
                yield "COMMIT"

        scheduler.add_session("w0", transfers)
        scheduler.add_session("w1", transfers)
        report = scheduler.run()
        assert report["statement_errors"] == 0
        assert all(s.status == DONE for s in scheduler.sessions)
        assert server.races is not None
        assert server.races.checks > 0
        assert server.races.open_spans() == 0
