"""Runtime sanitizers: each one catches a deliberately seeded bug and
reports the origin, and the clean engine passes them all."""

import pytest

from repro import Server, ServerConfig
from repro.analysis.sanitizers import (
    ClockError,
    GovernorDriftError,
    PinLeakError,
    QuotaAccountingError,
    RecoveryIdempotenceError,
    ReplacementError,
    SanitizedBufferGovernor,
    SanitizedBufferPool,
    SanitizedGClockPolicy,
    SanitizedMemoryGovernor,
    SanitizedSimClock,
)
from repro.buffer import BufferPool, GovernorConfig
from repro.buffer.frames import Frame, PageKind
from repro.common import MiB, SimClock
from repro.common.errors import MemoryQuotaExceededError
from repro.exec.spill import WorkMemory
from repro.ossim import OperatingSystem
from repro.storage import FlashDisk, Volume
from repro.storage.rowstore import TableStorage

pytestmark = pytest.mark.sanitizer


def make_server(pool_pages=256, mpl=2):
    config = ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=pool_pages,
        multiprogramming_level=mpl,
        governor=GovernorConfig(upper_bound_bytes=64 * MiB),
    )
    return Server(config, sanitize=True)


class _StubPool:
    capacity_pages = 8


def make_governor(mpl=4):
    return SanitizedMemoryGovernor(
        _StubPool(), max_pool_pages=100, multiprogramming_level=mpl
    )


class _PhantomConsumer:
    """Claims pages the task never allocated (a planted accounting bug)."""

    memory_pages = 4

    def relinquish_memory(self):
        return 0


class _EvictingConsumer:
    """Relinquishes by evicting bytes from its WorkMemory — the reentrant
    shape of HashJoin/Sort/Distinct under reclaim."""

    def __init__(self, memory, evict_bytes):
        self.memory = memory
        self.evict_bytes = evict_bytes

    @property
    def memory_pages(self):
        return self.memory.pages_held

    def relinquish_memory(self):
        before = self.memory.pages_held
        self.memory.remove(self.evict_bytes)
        return before - self.memory.pages_held


class TestPinLeakDetector:
    def test_pin_leak_reported_with_origin(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INT)")
        conn.execute("INSERT INTO t VALUES (1)")
        leak = server.pool.new_page(server.temp_file)  # the planted leak
        with pytest.raises(PinLeakError) as excinfo:
            conn.execute("SELECT * FROM t")
        message = str(excinfo.value)
        assert "test_sanitizers.py" in message
        assert "test_pin_leak_reported_with_origin" in message
        server.pool.unpin(leak)
        conn.close()

    def test_pin_origins_tracks_and_clears(self):
        server = make_server()
        assert isinstance(server.pool, SanitizedBufferPool)
        frame = server.pool.new_page(server.temp_file)
        origins = server.pool.pin_origins()
        assert frame.key in origins
        assert any("test_sanitizers.py" in site for site in origins[frame.key])
        server.pool.unpin(frame)
        assert server.pool.pin_origins() == {}
        server.pool.assert_no_pins()  # clean pool does not raise

    def test_pin_guard_releases_on_error(self):
        server = make_server()
        frame = server.pool.new_page(server.temp_file)
        with pytest.raises(RuntimeError):
            with server.pool.pin_guard(frame, dirty=True):
                raise RuntimeError("boom")
        assert server.pool.pinned_count() == 0
        server.pool.assert_no_pins()

    def test_statements_and_cursors_leave_no_pins(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INT, b INT)")
        server.load_table("t", [(i, i * i) for i in range(200)])
        conn.execute("SELECT * FROM t WHERE a < 50 ORDER BY b")
        cursor = conn.open_cursor("SELECT a FROM t ORDER BY a")
        assert cursor.fetchmany(10)
        assert server.pool.pinned_count() == 0
        cursor.close()
        conn.close()


class TestQuotaSanitizer:
    def test_phantom_consumer_reported_with_origin(self):
        governor = make_governor()
        task = governor.begin_task()
        task.register_consumer(_PhantomConsumer(), depth=0)
        with pytest.raises(QuotaAccountingError) as excinfo:
            task.allocate(1)
        message = str(excinfo.value)
        assert "allocate(1)" in message
        assert "test_sanitizers.py" in message

    def test_over_release_reported(self):
        governor = make_governor()
        task = governor.begin_task()
        task.allocate(2)
        with pytest.raises(QuotaAccountingError) as excinfo:
            task.release(5)
        assert "over-release" in str(excinfo.value)

    def test_dirty_teardown_reported(self):
        governor = make_governor()
        task = governor.begin_task()
        task.allocate(3)
        with pytest.raises(QuotaAccountingError) as excinfo:
            governor.end_task(task)
        assert "used_pages=3" in str(excinfo.value)

    def test_stale_consumer_at_teardown_reported(self):
        governor = make_governor()
        task = governor.begin_task()
        consumer = _EvictingConsumer(WorkMemory(task, 100), 0)
        task.register_consumer(consumer, depth=1)
        with pytest.raises(QuotaAccountingError) as excinfo:
            governor.end_task(task)
        assert "_EvictingConsumer" in str(excinfo.value)


class TestWorkMemoryReentrancy:
    """The WorkMemory.add fix (satellite 2): reclaim re-entering the same
    operator's relinquish_memory must not corrupt pages_held."""

    def _task_and_memory(self):
        governor = make_governor(mpl=4)  # soft limit: 8 // 4 = 2 pages
        task = governor.begin_task()
        memory = WorkMemory(task, 100)
        consumer = _EvictingConsumer(memory, evict_bytes=150)
        task.register_consumer(consumer, depth=1)
        return governor, task, memory, consumer

    def test_reentrant_reclaim_keeps_accounting_consistent(self):
        governor, task, memory, consumer = self._task_and_memory()
        memory.add(150)  # 2 pages, at the soft limit
        # The next add crosses the soft limit; reclaim re-enters
        # consumer.relinquish_memory -> memory.remove(150) mid-allocate.
        memory.add(100)
        assert task.soft_limit_hits == 1
        assert memory.pages_held == task.used_pages == 2
        task.unregister_consumer(consumer)
        memory.release_all()
        assert task.used_pages == 0
        governor.end_task(task)  # sanitizer: clean teardown

    def test_sanitizer_flags_the_old_overwrite_behaviour(self):
        """Replaying the pre-fix add() (allocate, then overwrite
        pages_held with the stale pre-reclaim target) trips the
        over-release check at teardown — the bug the sanitizer would
        have caught."""
        governor, task, memory, consumer = self._task_and_memory()
        memory.add(150)
        memory.bytes_used += 100
        needed = 3
        task.allocate(needed - memory.pages_held)  # reclaim shrinks to 1
        memory.pages_held = needed  # the old bug: ignores the reclaim
        task.unregister_consumer(consumer)
        with pytest.raises(QuotaAccountingError):
            memory.release_all()

    def test_quota_killed_statement_tears_down_clean(self):
        """End-to-end: a statement killed by the hard limit unwinds with
        zero pins, zero pages, and no stale consumers (the sanitizers
        would raise from end_task / assert_no_pins otherwise)."""
        server = make_server(pool_pages=64, mpl=1)
        server.memory_governor.max_pool_pages = 8  # pathological ceiling
        assert isinstance(server.memory_governor, SanitizedMemoryGovernor)
        conn = server.connect()
        conn.execute("CREATE TABLE t (k INT, v VARCHAR(10))")
        server.load_table("t", [(i, "v%d" % i) for i in range(5000)])
        with pytest.raises(MemoryQuotaExceededError):
            conn.execute("SELECT DISTINCT k FROM t ORDER BY k")
        assert server.pool.pinned_count() == 0
        assert server.memory_governor.total_used_pages() == 0


class TestClockSanitizer:
    def test_normal_advance_and_timers_pass(self):
        clock = SanitizedSimClock()
        fired = []
        clock.call_after(5, lambda: fired.append(clock.now))
        clock.advance(10)
        assert fired == [5] and clock.now == 10

    def test_rewind_detected(self):
        clock = SanitizedSimClock()
        clock.advance(10)
        clock._now = 3  # a component rewinding time behind our back
        with pytest.raises(ClockError):
            clock.advance(0)


class TestGClockSanitizer:
    def _frames(self, n, kind=PageKind.TEMP):
        return [Frame(kind, heap_ref=("h", i)) for i in range(n)]

    def test_valid_sweep_passes(self):
        policy = SanitizedGClockPolicy()
        frames = self._frames(3)
        for tick, frame in enumerate(frames):
            policy.on_insert(frame, tick)
        victim = policy.choose_victim(set(frames), tick)
        assert victim in frames and not victim.pinned

    def test_corrupted_hand_detected(self):
        policy = SanitizedGClockPolicy()
        frames = self._frames(2)
        for tick, frame in enumerate(frames):
            policy.on_insert(frame, tick)
        policy._hand = 7  # plant the PR 1 hand-drift corruption
        with pytest.raises(ReplacementError):
            policy.choose_victim(set(frames), 2)

    def test_server_uses_sanitized_policy(self):
        server = make_server()
        assert isinstance(server.pool.policy, SanitizedGClockPolicy)


def make_sanitized_buffer_governor():
    clock = SimClock()
    os_sim = OperatingSystem(256 * MiB)
    process = os_sim.spawn("dbserver")
    volume = Volume(FlashDisk(clock, 500_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
    governor = SanitizedBufferGovernor(
        clock, os_sim, process, pool,
        database_size_fn=lambda: 10**12,
        config=GovernorConfig(),
    )
    return volume, pool, governor


def force_misses(pool, volume, n=5):
    dbfile = volume.create_file("missfile")
    pages = []
    for i in range(n):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pages.append(frame.page_no)
        pool.unpin(frame)
    pool.flush_all()
    pool.discard(dbfile)
    for page in pages:
        pool.unpin(pool.fetch(dbfile, page))


class TestGovernorDriftSanitizer:
    def test_server_uses_sanitized_governor(self):
        server = make_server()
        assert isinstance(server.buffer_governor, SanitizedBufferGovernor)

    def test_clean_resize_passes(self):
        volume, pool, governor = make_sanitized_buffer_governor()
        force_misses(pool, volume)
        sample = governor.poll_once()  # a GROW with proper allocation sync
        assert sample.action == "grow"

    def test_forgotten_allocation_sync_detected(self):
        """Plant the drift bug: a resize that skips the process-allocation
        update leaves the control law steering on a stale reference."""
        volume, pool, governor = make_sanitized_buffer_governor()
        governor._sync_process_allocation = lambda: None
        force_misses(pool, volume)
        with pytest.raises(GovernorDriftError) as excinfo:
            governor.poll_once()
        assert "governor drift after grow" in str(excinfo.value)


class TestRecoveryIdempotenceSanitizer:
    def test_clean_recovery_passes_the_second_redo_pass(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INT)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        server.crash()
        server.restart()  # sanitize on: the idempotence replay runs
        assert list(conn.execute("SELECT a FROM t ORDER BY a")) == [(1,), (2,)]
        conn.close()

    def test_broken_lsn_guard_detected(self, monkeypatch):
        """Plant the classic redo bug: redo_apply that claims to apply on
        every replay (a missing page-LSN guard).  The second pass must
        trip the sanitizer."""
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INT)")
        conn.execute("INSERT INTO t VALUES (1)")
        server.crash()
        real = TableStorage.redo_apply
        monkeypatch.setattr(
            TableStorage, "redo_apply",
            lambda self, record: bool(real(self, record)) or True,
        )
        with pytest.raises(RecoveryIdempotenceError) as excinfo:
            server.restart()
        assert "redo is not idempotent" in str(excinfo.value)


class TestEnablement:
    def test_sanitize_false_uses_plain_components(self):
        from repro.analysis import sanitizers as mod

        mod.set_sanitizers_enabled(False)
        server = Server(ServerConfig(start_buffer_governor=False))
        assert not server.sanitize
        assert not isinstance(server.pool, SanitizedBufferPool)

    def test_fixture_default_is_sanitized(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        assert server.sanitize
        assert isinstance(server.pool, SanitizedBufferPool)
