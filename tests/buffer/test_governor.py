"""Unit tests for the buffer-pool sizing governor (Section 2)."""

import pytest

from repro.buffer import BufferGovernor, BufferPool, GovernorConfig, PageKind
from repro.buffer.governor import (
    GROW,
    HOLD_DEADBAND,
    HOLD_NO_MISSES,
    SHRINK,
)
from repro.common import KiB, MiB, SECOND, MINUTE, SimClock
from repro.ossim import OperatingSystem
from repro.storage import FlashDisk, Volume


def make_env(
    total_memory=256 * MiB,
    capacity_pages=1024,  # 4 MiB pool
    supports_working_set=True,
    db_size=10**12,  # effectively uncapped unless a test overrides
    **config_kwargs,
):
    clock = SimClock()
    os = OperatingSystem(total_memory, supports_working_set=supports_working_set)
    server = os.spawn("dbserver")
    volume = Volume(FlashDisk(clock, 500_000))
    temp = volume.create_file("temp")
    pool = BufferPool(temp, capacity_pages=capacity_pages)
    config = GovernorConfig(**config_kwargs)
    governor = BufferGovernor(
        clock, os, server, pool,
        database_size_fn=lambda: db_size,
        config=config,
    )
    return clock, os, server, volume, pool, governor


def force_misses(pool, volume, n=5):
    """Generate buffer misses so growth is not gated off."""
    dbfile = volume.create_file("missfile-%d" % volume.disk.reads)
    pages = []
    for i in range(n):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pages.append(frame.page_no)
        pool.unpin(frame)
    pool.flush_all()
    pool.discard(dbfile)
    for page in pages:
        frame = pool.fetch(dbfile, page)
        pool.unpin(frame)


class TestControlLaw:
    def test_grows_toward_free_memory(self):
        clock, os, server, volume, pool, governor = make_env()
        start = pool.size_bytes()
        force_misses(pool, volume)
        sample = governor.poll_once()
        assert sample.action == GROW
        assert pool.size_bytes() > start

    def test_damping_factor_applied(self):
        clock, os, server, volume, pool, governor = make_env()
        current = pool.size_bytes()
        force_misses(pool, volume)
        sample = governor.poll_once()
        expected = int(0.9 * sample.ideal_bytes + 0.1 * current)
        # set_capacity rounds to whole pages.
        assert sample.new_pool_bytes == pytest.approx(expected, abs=pool.page_size)

    def test_growth_gated_without_misses(self):
        clock, os, server, volume, pool, governor = make_env()
        sample = governor.poll_once()
        assert sample.action == HOLD_NO_MISSES
        assert sample.new_pool_bytes == 4 * MiB

    def test_shrink_allowed_without_misses(self):
        clock, os, server, volume, pool, governor = make_env(
            capacity_pages=30 * MiB // (4 * KiB)
        )
        competitor = os.spawn("bloatware")
        competitor.allocate(240 * MiB)  # squeeze the machine
        sample = governor.poll_once()
        assert sample.action == SHRINK
        assert pool.size_bytes() < 30 * MiB

    def test_deadband_suppresses_small_changes(self):
        clock, os, server, volume, pool, governor = make_env()
        force_misses(pool, volume)
        governor.poll_once()  # converge a first step
        for __ in range(60):
            force_misses(pool, volume)
            sample = governor.poll_once()
        # At equilibrium the controller holds inside the 64 KB deadband.
        assert sample.action == HOLD_DEADBAND

    def test_lower_bound_respected(self):
        clock, os, server, volume, pool, governor = make_env(
            capacity_pages=4 * MiB // (4 * KiB), lower_bound_bytes=3 * MiB
        )
        competitor = os.spawn("hog")
        competitor.allocate(10**12)  # absurd pressure
        for __ in range(10):
            governor.poll_once()
        assert pool.size_bytes() >= 3 * MiB

    def test_upper_bound_respected(self):
        clock, os, server, volume, pool, governor = make_env(
            upper_bound_bytes=8 * MiB
        )
        for __ in range(10):
            force_misses(pool, volume)
            governor.poll_once()
        assert pool.size_bytes() <= 8 * MiB

    def test_soft_cap_database_plus_heap(self):
        # eq (1): pool <= min(db size + heap size, upper bound)
        clock, os, server, volume, pool, governor = make_env(db_size=6 * MiB)
        for __ in range(10):
            force_misses(pool, volume)
            governor.poll_once()
        assert pool.size_bytes() <= 6 * MiB + 64 * KiB

    def test_growing_temp_files_unconstrain_the_pool(self):
        # "larger temporary files will automatically unconstrain the
        # maximum buffer pool size"
        sizes = {"db": 6 * MiB}
        clock = SimClock()
        os = OperatingSystem(256 * MiB)
        server = os.spawn("dbserver")
        volume = Volume(FlashDisk(clock, 500_000))
        temp = volume.create_file("temp")
        pool = BufferPool(temp, capacity_pages=1024)
        governor = BufferGovernor(
            clock, os, server, pool, database_size_fn=lambda: sizes["db"]
        )
        for __ in range(5):
            force_misses(pool, volume)
            governor.poll_once()
        capped = pool.size_bytes()
        assert capped <= 6 * MiB + 64 * KiB
        sizes["db"] = 200 * MiB  # big intermediate results landed in temp
        for __ in range(10):
            force_misses(pool, volume)
            governor.poll_once()
        assert pool.size_bytes() > capped


class TestPolling:
    def test_startup_polls_are_fast(self):
        clock, os, server, volume, pool, governor = make_env()
        force_misses(pool, volume)
        sample = governor.poll_once()
        assert sample.interval_us == 20 * SECOND

    def test_interval_returns_to_one_minute(self):
        clock, os, server, volume, pool, governor = make_env(startup_fast_polls=2)
        samples = [governor.poll_once() for __ in range(4)]
        assert samples[0].interval_us == 20 * SECOND
        assert samples[-1].interval_us == 1 * MINUTE

    def test_significant_database_growth_restores_fast_polling(self):
        sizes = {"db": 10 * MiB}
        clock = SimClock()
        os = OperatingSystem(256 * MiB)
        server = os.spawn("dbserver")
        volume = Volume(FlashDisk(clock, 500_000))
        pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
        governor = BufferGovernor(
            clock, os, server, pool,
            database_size_fn=lambda: sizes["db"],
            config=GovernorConfig(startup_fast_polls=1),
        )
        governor.poll_once()
        governor.poll_once()
        assert governor.poll_once().interval_us == 1 * MINUTE
        sizes["db"] = 50 * MiB  # grew 5x: significant
        governor.poll_once()
        assert governor.poll_once().interval_us == 20 * SECOND

    def test_start_schedules_on_clock(self):
        clock, os, server, volume, pool, governor = make_env()
        governor.start()
        assert len(governor.history) == 0
        clock.advance(21 * SECOND)
        assert len(governor.history) == 1
        governor.stop()
        clock.advance(10 * MINUTE)
        assert len(governor.history) == 1

    def test_process_allocation_tracks_pool(self):
        clock, os, server, volume, pool, governor = make_env()
        force_misses(pool, volume)
        governor.poll_once()
        assert server.allocated == pool.size_bytes()


class TestCEVariant:
    def test_ce_grows_only_when_free_memory_increases(self):
        clock, os, server, volume, pool, governor = make_env(
            supports_working_set=False
        )
        competitor = os.spawn("other-app")
        competitor.allocate(100 * MiB)
        force_misses(pool, volume)
        first = governor.poll_once()  # establishes the free-memory baseline
        assert first.working_set is None
        force_misses(pool, volume)
        before = pool.size_bytes()
        sample = governor.poll_once()  # free memory unchanged: no growth
        assert pool.size_bytes() <= before + 64 * KiB
        competitor.allocate(-80 * MiB)  # other app frees memory
        force_misses(pool, volume)
        governor.poll_once()
        assert pool.size_bytes() > before

    def test_ce_shrinks_when_other_apps_allocate(self):
        clock, os, server, volume, pool, governor = make_env(
            supports_working_set=False,
            total_memory=64 * MiB,
            capacity_pages=30 * MiB // (4 * KiB),
        )
        governor.poll_once()
        competitor = os.spawn("other-app")
        competitor.allocate(40 * MiB)  # device memory now scarce
        before = pool.size_bytes()
        governor.poll_once()
        assert pool.size_bytes() < before
