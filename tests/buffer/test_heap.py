"""Unit tests for connection heaps (lock/unlock/steal/swizzle)."""

import pytest

from repro.buffer import BufferPool, Heap, PageKind
from repro.common import SimClock
from repro.common.errors import ReproError
from repro.storage import FlashDisk, Volume


@pytest.fixture
def env():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 50_000))
    dbfile = volume.create_file("main.db")
    temp = volume.create_file("temp")
    pool = BufferPool(temp, capacity_pages=6)
    return clock, volume, dbfile, temp, pool


def test_allocate_and_read_write(env):
    __, __, __, __, pool = env
    heap = Heap(pool, "conn1")
    slot = heap.allocate_page({"hash": "table"})
    assert heap.read(slot) == {"hash": "table"}
    heap.write(slot, "updated")
    assert heap.read(slot) == "updated"
    assert heap.page_count == 1


def test_locked_heap_pages_are_pinned(env):
    __, __, dbfile, __, pool = env
    heap = Heap(pool)
    heap.allocate_page("a")
    assert pool.pinned_count() == 1


def test_unlocked_heap_rejects_access(env):
    __, __, __, __, pool = env
    heap = Heap(pool)
    slot = heap.allocate_page("a")
    heap.unlock()
    with pytest.raises(ReproError):
        heap.read(slot)
    with pytest.raises(ReproError):
        heap.allocate_page("b")


def test_unlocked_pages_can_be_stolen_and_swizzled_back(env):
    __, __, dbfile, temp, pool = env
    heap = Heap(pool, "victim")
    slots = [heap.allocate_page("payload-%d" % i) for i in range(4)]
    heap.unlock()
    # Table traffic floods the pool, stealing the heap's pages.
    for i in range(10):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pool.unpin(frame)
    assert heap.resident_count() < 4
    assert pool.heap_spills > 0
    spilled = 4 - heap.resident_count()
    heap.lock()
    assert heap.resident_count() == 4
    assert heap.swizzle_count == spilled
    for i, slot in enumerate(slots):
        assert heap.read(slot) == "payload-%d" % i


def test_spilled_pages_live_in_temp_file(env):
    __, __, dbfile, temp, pool = env
    heap = Heap(pool)
    for i in range(4):
        heap.allocate_page(i)
    heap.unlock()
    for i in range(10):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pool.unpin(frame)
    assert temp.page_count > 0
    heap.lock()
    # Reload frees the temp pages again.
    assert temp.page_count == 0


def test_relock_is_idempotent(env):
    __, __, __, __, pool = env
    heap = Heap(pool)
    heap.allocate_page("x")
    heap.lock()  # already locked: no-op
    heap.unlock()
    heap.unlock()  # already unlocked: no-op
    heap.lock()
    assert heap.read(0) == "x"


def test_free_releases_everything(env):
    __, __, dbfile, temp, pool = env
    heap = Heap(pool)
    for i in range(3):
        heap.allocate_page(i)
    heap.free()
    assert pool.used_pages == 0
    assert heap.page_count == 0
    with pytest.raises(ReproError):
        heap.allocate_page("more")


def test_free_of_spilled_heap_releases_temp_pages(env):
    __, __, dbfile, temp, pool = env
    heap = Heap(pool)
    for i in range(4):
        heap.allocate_page(i)
    heap.unlock()
    for i in range(12):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pool.unpin(frame)
    heap.free()
    assert temp.page_count == 0


def test_size_bytes(env):
    __, __, __, __, pool = env
    heap = Heap(pool)
    heap.allocate_page("a")
    heap.allocate_page("b")
    assert heap.size_bytes() == 2 * pool.page_size


def test_unlocked_heap_memory_footprint_is_small(env):
    """Unlocked + stolen == tiny footprint, the fiber-flexibility claim."""
    __, __, dbfile, __, pool = env
    heap = Heap(pool)
    for i in range(5):
        heap.allocate_page(i)
    heap.unlock()
    for i in range(20):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pool.unpin(frame)
    assert heap.resident_count() == 0  # fully swapped out
