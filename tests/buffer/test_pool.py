"""Unit tests for the buffer pool."""

import pytest

from repro.buffer import BufferPool, PageKind
from repro.common import SimClock
from repro.storage import FlashDisk, Volume


@pytest.fixture
def env():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 50_000))
    dbfile = volume.create_file("main.db")
    temp = volume.create_file("temp")
    pool = BufferPool(temp, capacity_pages=8)
    return clock, volume, dbfile, temp, pool


def fill_file(dbfile, pool, n_pages):
    pages = []
    for i in range(n_pages):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload={"rows": [i]})
        pages.append(frame.page_no)
        pool.unpin(frame, dirty=True)
    return pages


def test_new_page_is_pinned_and_dirty(env):
    __, __, dbfile, __, pool = env
    frame = pool.new_page(dbfile, PageKind.TABLE, payload="x")
    assert frame.pinned
    assert frame.dirty
    assert pool.used_pages == 1


def test_fetch_hit_does_no_io(env):
    clock, volume, dbfile, __, pool = env
    frame = pool.new_page(dbfile, payload="x")
    pool.unpin(frame)
    reads_before = volume.disk.reads
    again = pool.fetch(dbfile, frame.page_no)
    assert again is frame
    assert volume.disk.reads == reads_before
    assert pool.hits == 1
    pool.unpin(again)


def test_fetch_miss_reads_from_device(env):
    __, volume, dbfile, __, pool = env
    pages = fill_file(dbfile, pool, 12)  # exceeds capacity 8: oldest evicted
    evicted = pages[0]
    assert not pool.resident(dbfile, evicted)
    reads_before = volume.disk.reads
    frame = pool.fetch(dbfile, evicted)
    assert volume.disk.reads == reads_before + 1
    assert frame.payload == {"rows": [0]}
    pool.unpin(frame)


def test_eviction_writes_back_dirty_pages(env):
    __, volume, dbfile, __, pool = env
    fill_file(dbfile, pool, 12)
    assert pool.evictions >= 4
    assert pool.writebacks >= 4
    # The data survives the round trip through the device.
    frame = pool.fetch(dbfile, 0)
    assert frame.payload == {"rows": [0]}
    pool.unpin(frame)


def test_capacity_never_exceeded(env):
    __, __, dbfile, __, pool = env
    fill_file(dbfile, pool, 30)
    assert pool.used_pages <= pool.capacity_pages == 8


def test_unpin_below_zero_rejected(env):
    __, __, dbfile, __, pool = env
    frame = pool.new_page(dbfile)
    pool.unpin(frame)
    with pytest.raises(ValueError):
        pool.unpin(frame)


def test_shrink_evicts(env):
    __, __, dbfile, __, pool = env
    fill_file(dbfile, pool, 8)
    pool.set_capacity(3)
    assert pool.capacity_pages == 3
    assert pool.used_pages <= 3


def test_shrink_stops_at_pinned_floor(env):
    __, __, dbfile, __, pool = env
    frames = [pool.new_page(dbfile) for __ in range(5)]  # all pinned
    actual = pool.set_capacity(2)
    assert actual == 5
    for frame in frames:
        pool.unpin(frame)


def test_grow_just_raises_ceiling(env):
    __, __, dbfile, __, pool = env
    fill_file(dbfile, pool, 4)
    pool.set_capacity(16)
    assert pool.capacity_pages == 16
    assert pool.used_pages == 4


def test_flush_all_clears_dirty(env):
    __, volume, dbfile, __, pool = env
    frame = pool.new_page(dbfile, payload="v")
    pool.unpin(frame, dirty=True)
    pool.flush_all()
    assert not frame.dirty
    assert volume.peek_payload(dbfile.global_page(frame.page_no)) == "v"


def test_discard_drops_without_writeback(env):
    __, volume, dbfile, __, pool = env
    frame = pool.new_page(dbfile, payload="gone")
    pool.unpin(frame, dirty=True)
    writes_before = volume.disk.writes
    pool.discard(dbfile)
    assert pool.used_pages == 0
    assert volume.disk.writes == writes_before


def test_resident_fraction(env):
    __, __, dbfile, __, pool = env
    fill_file(dbfile, pool, 4)
    assert pool.resident_fraction(dbfile) == pytest.approx(1.0)
    fill_file(dbfile, pool, 12)  # 16 total pages, at most 8 resident
    assert pool.resident_fraction(dbfile) <= 0.5 + 1e-9


def test_miss_accounting(env):
    __, __, dbfile, __, pool = env
    mark = pool.mark()
    fill_file(dbfile, pool, 3)
    frame = pool.fetch(dbfile, 0)  # hit
    pool.unpin(frame)
    assert pool.misses_since(mark) == 0  # new_page is not a miss
    pool.set_capacity(1)
    evicted = next(p for p in range(3) if not pool.resident(dbfile, p))
    frame = pool.fetch(dbfile, evicted)
    pool.unpin(frame)
    assert pool.misses_since(mark) >= 1


def test_heap_frames_share_the_pool(env):
    __, __, dbfile, __, pool = env

    class FakeHeap:
        def note_spilled(self, slot, page):
            pass

    heap = FakeHeap()
    frame = pool.allocate_heap_frame((heap, 0), payload="h")
    assert frame.kind == PageKind.HEAP
    assert pool.used_pages == 1
    pool.unpin(frame)
    pool.release_frame(frame)
    assert pool.used_pages == 0


def test_minimum_capacity_is_one(env):
    __, __, __, temp, __ = env
    with pytest.raises(ValueError):
        BufferPool(temp, capacity_pages=0)
