"""Stateful property testing of the buffer pool + heap interplay.

A hypothesis rule machine performs random interleavings of page creation,
fetches, pins/unpins, heap lock/unlock/free, and pool resizes, checking
the pool's core invariants after every step:

* resident frames never exceed capacity;
* pinned frames are never evicted;
* page contents always round-trip (through eviction, write-back, and heap
  spilling alike).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    multiple,
    rule,
)

from repro.buffer import BufferPool, Heap, PageKind
from repro.common import SimClock
from repro.storage import FlashDisk, Volume


class PoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        clock = SimClock()
        self.volume = Volume(FlashDisk(clock, 200_000))
        self.dbfile = self.volume.create_file("data")
        temp = self.volume.create_file("temp")
        self.pool = BufferPool(temp, capacity_pages=12)
        self.contents = {}   # page_no -> expected payload
        self.pinned = {}     # page_no -> frame (currently pinned by us)
        self.heaps = []      # [(heap, {slot: payload})]
        self.counter = 0

    pages = Bundle("pages")

    # -- disk-backed pages ----------------------------------------------- #

    def _headroom(self):
        return self.pool.capacity_pages - self.pool.pinned_count()

    @rule(target=pages)
    def new_page(self):
        if self._headroom() < 2:
            return multiple()  # a full-of-pins pool rightly refuses growth
        self.counter += 1
        payload = "payload-%d" % self.counter
        frame = self.pool.new_page(self.dbfile, PageKind.TABLE, payload)
        self.pool.unpin(frame, dirty=True)
        self.contents[frame.page_no] = payload
        return frame.page_no

    @rule(page=pages)
    def fetch_and_check(self, page):
        if page is None or self._headroom() < 2:
            return
        frame = self.pool.fetch(self.dbfile, page)
        assert frame.payload == self.contents[page]
        self.pool.unpin(frame)

    @rule(page=pages)
    def rewrite(self, page):
        if page is None or self._headroom() < 2:
            return
        self.counter += 1
        payload = "rewrite-%d" % self.counter
        frame = self.pool.fetch(self.dbfile, page)
        frame.payload = payload
        self.pool.unpin(frame, dirty=True)
        self.contents[page] = payload

    @rule(page=pages)
    def pin_for_a_while(self, page):
        if page is None or page in self.pinned:
            return
        if self._headroom() < 3:
            return  # keep room so the pool can always operate
        self.pinned[page] = self.pool.fetch(self.dbfile, page)

    @rule()
    def unpin_everything(self):
        for page, frame in self.pinned.items():
            self.pool.unpin(frame)
        self.pinned = {}

    # -- heaps --------------------------------------------------------------- #

    @rule(n_pages=st.integers(min_value=1, max_value=3))
    def make_heap(self, n_pages):
        if self._headroom() < n_pages + 2:
            return
        heap = Heap(self.pool)
        slots = {}
        for i in range(n_pages):
            self.counter += 1
            payload = "heap-%d" % self.counter
            slots[heap.allocate_page(payload)] = payload
        heap.unlock()
        self.heaps.append((heap, slots))

    @rule()
    def relock_a_heap(self):
        if not self.heaps or self._headroom() < 4:
            return
        heap, slots = self.heaps[0]
        heap.lock()
        for slot, payload in slots.items():
            assert heap.read(slot) == payload
        heap.unlock()

    @rule()
    def free_a_heap(self):
        if not self.heaps:
            return
        heap, __ = self.heaps.pop()
        heap.free()

    # -- resizing ---------------------------------------------------------- #

    @rule(capacity=st.integers(min_value=4, max_value=24))
    def resize(self, capacity):
        self.pool.set_capacity(capacity)

    # -- invariants ----------------------------------------------------------- #

    @invariant()
    def capacity_respected(self):
        assert self.pool.used_pages <= self.pool.capacity_pages

    @invariant()
    def pinned_frames_resident(self):
        for page, frame in self.pinned.items():
            assert self.pool.resident(self.dbfile, page)
            assert frame.pin_count >= 1

    def teardown(self):
        for frame in self.pinned.values():
            self.pool.unpin(frame)
        for heap, __ in self.heaps:
            heap.free()


PoolMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestPoolMachine = PoolMachine.TestCase
