"""Unit tests for page replacement policies."""

import pytest

from repro.buffer import FIFOPolicy, GClockPolicy, LRUPolicy, PageKind
from repro.buffer.frames import Frame
from repro.common.errors import BufferPoolExhaustedError


def make_frame(kind=PageKind.TABLE, key=0):
    frame = Frame(kind, heap_ref=("test", key))
    return frame


class TestGClock:
    def test_new_frame_gets_score_one(self):
        policy = GClockPolicy()
        frame = make_frame()
        policy.on_insert(frame, tick=1)
        assert frame.score == 1.0

    def test_victim_is_cold_page(self):
        policy = GClockPolicy()
        hot = make_frame(key=1)
        cold = make_frame(key=2)
        policy.on_insert(cold, 1)
        policy.on_insert(hot, 2)
        # Re-reference the hot page many ticks apart so it climbs segments.
        for tick in range(10, 100, 10):
            policy.on_reference(hot, tick)
        victim = policy.choose_victim({hot, cold}, 100)
        assert victim is cold

    def test_pinned_frames_skipped(self):
        policy = GClockPolicy()
        pinned = make_frame(key=1)
        pinned.pin_count = 1
        other = make_frame(key=2)
        policy.on_insert(pinned, 1)
        policy.on_insert(other, 2)
        assert policy.choose_victim({pinned, other}, 3) is other

    def test_all_pinned_raises(self):
        policy = GClockPolicy()
        frame = make_frame()
        frame.pin_count = 1
        policy.on_insert(frame, 1)
        with pytest.raises(BufferPoolExhaustedError):
            policy.choose_victim({frame}, 2)

    def test_scores_decay_so_everything_becomes_candidate(self):
        # "Page scores are decayed exponentially to ensure that all pages
        # can eventually become candidates for replacement."
        policy = GClockPolicy()
        frames = [make_frame(key=i) for i in range(4)]
        for i, frame in enumerate(frames):
            policy.on_insert(frame, i)
            for tick in range(10 * (i + 1), 200, 7):
                policy.on_reference(frame, tick)
        # Even with every page warm, a victim is always found.
        victim = policy.choose_victim(set(frames), 300)
        assert victim in frames

    def test_lookaside_preferred_over_clock(self):
        policy = GClockPolicy()
        table = make_frame(PageKind.TABLE, key=1)
        heap = make_frame(PageKind.HEAP, key=2)
        policy.on_insert(table, 1)
        policy.on_insert(heap, 2)
        policy.note_reusable(heap)
        assert policy.lookaside_depth() == 1
        assert policy.choose_victim({table, heap}, 3) is heap

    def test_lookaside_only_for_reusable_kinds(self):
        policy = GClockPolicy()
        table = make_frame(PageKind.TABLE, key=1)
        policy.on_insert(table, 1)
        policy.note_reusable(table)
        assert policy.lookaside_depth() == 0

    def test_lookaside_skips_stale_entries(self):
        policy = GClockPolicy()
        heap = make_frame(PageKind.HEAP, key=1)
        other = make_frame(PageKind.TEMP, key=2)
        policy.on_insert(heap, 1)
        policy.on_insert(other, 2)
        policy.note_reusable(heap)
        policy.on_remove(heap)
        policy.note_reusable(other)
        # heap was evicted already: the queue entry is stale and skipped.
        assert policy.choose_victim({other}, 3) is other

    def test_remove_below_hand_keeps_hand_on_same_frame(self):
        # Regression: removing a frame below the hand shifted the ring
        # left under it, so the hand silently skipped the next frame and
        # the sweep stopped being fair.
        policy = GClockPolicy()
        a = make_frame(key=1)
        b = make_frame(key=2)
        c = make_frame(key=3)
        for tick, frame in enumerate((a, b, c), start=1):
            policy.on_insert(frame, tick)
        policy._hand = 1  # the hand points at b
        policy.on_remove(a)
        assert policy._ring[policy._hand] is b
        # With equal scores the sweep's first victim is the frame under
        # the hand — b, not the skipped-over c.
        assert policy.choose_victim({b, c}, 10) is b

    def test_remove_above_hand_leaves_hand_alone(self):
        policy = GClockPolicy()
        a = make_frame(key=1)
        b = make_frame(key=2)
        c = make_frame(key=3)
        for tick, frame in enumerate((a, b, c), start=1):
            policy.on_insert(frame, tick)
        policy._hand = 1
        policy.on_remove(c)  # above the hand: indexes below are unmoved
        assert policy._ring[policy._hand] is b

    def test_remove_last_frame_wraps_hand(self):
        policy = GClockPolicy()
        a = make_frame(key=1)
        b = make_frame(key=2)
        policy.on_insert(a, 1)
        policy.on_insert(b, 2)
        policy._hand = 1
        policy.on_remove(b)
        assert policy._hand == 0

    def test_rapid_rereference_does_not_inflate_score(self):
        # Adjacent references during a table scan must not pump the score.
        policy = GClockPolicy()
        frame = make_frame()
        policy.on_insert(frame, 100)
        policy.on_reference(frame, 100)
        policy.on_reference(frame, 100)
        assert frame.score == 1.0


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        a, b = make_frame(key=1), make_frame(key=2)
        policy.on_insert(a, 1)
        policy.on_insert(b, 2)
        policy.on_reference(a, 5)
        assert policy.choose_victim({a, b}, 6) is b

    def test_all_pinned_raises(self):
        policy = LRUPolicy()
        frame = make_frame()
        frame.pin_count = 2
        policy.on_insert(frame, 1)
        with pytest.raises(BufferPoolExhaustedError):
            policy.choose_victim({frame}, 2)


class TestFIFO:
    def test_evicts_first_inserted_despite_references(self):
        policy = FIFOPolicy()
        a, b = make_frame(key=1), make_frame(key=2)
        policy.on_insert(a, 1)
        policy.on_insert(b, 2)
        policy.on_reference(a, 10)
        assert policy.choose_victim({a, b}, 11) is a
