"""Unit tests for catalog objects and SQL types."""

import datetime

import pytest

from repro.catalog import (
    Catalog,
    Column,
    ForeignKey,
    IndexSchema,
    ProcedureSchema,
    TableSchema,
    estimated_value_bytes,
    normalize_type,
    python_value_matches,
)
from repro.catalog.types import coerce_value
from repro.common.errors import CatalogError, SqlTypeError


class TestTypes:
    def test_aliases_normalize(self):
        assert normalize_type("integer") == "INT"
        assert normalize_type("REAL") == "DOUBLE"
        assert normalize_type("text") == "VARCHAR"

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlTypeError):
            normalize_type("BLOBBY")

    def test_value_matching(self):
        assert python_value_matches("INT", 5)
        assert not python_value_matches("INT", True)  # bool is not INT
        assert python_value_matches("DOUBLE", 5)
        assert python_value_matches("VARCHAR", "x")
        assert python_value_matches("DATE", datetime.date(2000, 1, 1))
        assert python_value_matches("BOOLEAN", True)
        assert python_value_matches("INT", None)  # NULL matches everything

    def test_coerce_int_to_double(self):
        assert coerce_value("DOUBLE", 3) == 3.0
        assert isinstance(coerce_value("DOUBLE", 3), float)

    def test_coerce_rejects_mismatch(self):
        with pytest.raises(SqlTypeError):
            coerce_value("INT", "nope")

    def test_estimated_bytes(self):
        assert estimated_value_bytes("INT") == 8
        assert estimated_value_bytes("VARCHAR") == 24
        assert estimated_value_bytes("VARCHAR", declared_length=100) == 54


class TestTableSchema:
    def make(self):
        return TableSchema(
            "emp",
            [Column("id", "INT", nullable=False), Column("name", "VARCHAR")],
            primary_key=("id",),
        )

    def test_column_lookup(self):
        table = self.make()
        assert table.column_index("name") == 1
        assert table.column("id").type_name == "INT"
        assert table.has_column("id")
        assert not table.has_column("salary")

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            self.make().column_index("ghost")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", "INT"), Column("a", "INT")])

    def test_pk_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", "INT")], primary_key=("b",))

    def test_row_bytes_sums_columns(self):
        assert self.make().row_bytes() == 8 + 8 + 24

    def test_foreign_keys(self):
        table = TableSchema(
            "order_line",
            [Column("order_id", "INT")],
            foreign_keys=[ForeignKey(["order_id"], "orders", ["id"])],
        )
        assert table.foreign_keys[0].ref_table == "orders"


class TestCatalog:
    def test_add_and_get_table(self):
        catalog = Catalog()
        table = catalog.add_table(TableSchema("t", [Column("a", "INT")]))
        assert catalog.table("t") is table
        assert catalog.has_table("t")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", "INT")]))
        with pytest.raises(CatalogError):
            catalog.add_table(TableSchema("t", [Column("a", "INT")]))

    def test_drop_table_cascades_indexes(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", "INT")]))
        catalog.add_index(IndexSchema("i", "t", ["a"]))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.index("i")

    def test_index_requires_table(self):
        with pytest.raises(CatalogError):
            Catalog().add_index(IndexSchema("i", "ghost", ["a"]))

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", "INT"), Column("b", "INT")]))
        catalog.add_index(IndexSchema("ia", "t", ["a"]))
        catalog.add_index(IndexSchema("ib", "t", ["b"]))
        assert {index.name for index in catalog.indexes_on("t")} == {"ia", "ib"}

    def test_procedures(self):
        catalog = Catalog()
        catalog.add_procedure(ProcedureSchema("p", ["x"], "SELECT 1"))
        assert catalog.has_procedure("p")
        assert catalog.procedure("p").parameters == ("x",)
        with pytest.raises(CatalogError):
            catalog.add_procedure(ProcedureSchema("p", [], "SELECT 2"))
