"""Unit tests for the simulated clock."""

import pytest

from repro.common import SimClock, Timer


def test_clock_starts_at_zero():
    assert SimClock().now == 0


def test_clock_custom_start():
    assert SimClock(start=500).now == 500


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        SimClock(start=-1)


def test_advance_moves_time():
    clock = SimClock()
    clock.advance(1000)
    clock.advance(234)
    assert clock.now == 1234


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_timer_fires_at_deadline():
    clock = SimClock()
    fired = []
    clock.call_at(100, lambda: fired.append(clock.now))
    clock.advance(99)
    assert fired == []
    clock.advance(1)
    assert fired == [100]


def test_timer_fires_in_order():
    clock = SimClock()
    fired = []
    clock.call_at(200, lambda: fired.append("b"))
    clock.call_at(100, lambda: fired.append("a"))
    clock.call_at(300, lambda: fired.append("c"))
    clock.advance(1000)
    assert fired == ["a", "b", "c"]


def test_timer_same_deadline_fifo():
    clock = SimClock()
    fired = []
    clock.call_at(100, lambda: fired.append("first"))
    clock.call_at(100, lambda: fired.append("second"))
    clock.advance(100)
    assert fired == ["first", "second"]


def test_callback_sees_deadline_as_now():
    clock = SimClock()
    seen = []
    clock.call_at(50, lambda: seen.append(clock.now))
    clock.advance(500)
    assert seen == [50]
    assert clock.now == 500


def test_rescheduling_callback_fires_within_same_advance():
    clock = SimClock()
    fired = []

    def tick():
        fired.append(clock.now)
        if clock.now < 300:
            clock.call_after(100, tick)

    clock.call_at(100, tick)
    clock.advance(1000)
    assert fired == [100, 200, 300]


def test_call_after_relative():
    clock = SimClock(start=1000)
    fired = []
    clock.call_after(500, lambda: fired.append(clock.now))
    clock.advance(499)
    assert fired == []
    clock.advance(1)
    assert fired == [1500]


def test_call_after_rejects_negative_delay():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.call_after(-5, lambda: None)


def test_past_deadline_fires_on_next_advance():
    clock = SimClock(start=100)
    fired = []
    clock.call_at(10, lambda: fired.append(True))
    clock.advance(0)
    assert fired == [True]


def test_pending_timers_count():
    clock = SimClock()
    clock.call_at(10, lambda: None)
    clock.call_at(20, lambda: None)
    assert clock.pending_timers() == 2
    clock.advance(15)
    assert clock.pending_timers() == 1


def test_timer_charge_accumulates_and_advances_clock():
    clock = SimClock()
    timer = Timer(clock)
    timer.charge(100)
    timer.charge(50)
    assert timer.elapsed_us == 150
    assert clock.now == 150


def test_timer_reset_keeps_clock():
    clock = SimClock()
    timer = Timer(clock)
    timer.charge(75)
    timer.reset()
    assert timer.elapsed_us == 0
    assert clock.now == 75


def test_timer_rejects_negative_charge():
    timer = Timer(SimClock())
    with pytest.raises(ValueError):
        timer.charge(-1)
