"""Unit tests for value coding (order-preserving hash, widths, words)."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import order_preserving_hash, string_hash, value_width, word_tokens


class TestOrderPreservingHash:
    def test_int_maps_to_float_value(self):
        assert order_preserving_hash(42) == 42.0

    def test_float_identity(self):
        assert order_preserving_hash(3.25) == 3.25

    def test_bool(self):
        assert order_preserving_hash(False) == 0.0
        assert order_preserving_hash(True) == 1.0

    def test_date_is_days_since_epoch(self):
        assert order_preserving_hash(datetime.date(1970, 1, 2)) == 1.0

    def test_date_ordering(self):
        early = order_preserving_hash(datetime.date(1999, 12, 31))
        late = order_preserving_hash(datetime.date(2000, 1, 1))
        assert early < late

    def test_string_ordering_basic(self):
        assert order_preserving_hash("apple") < order_preserving_hash("banana")

    def test_string_prefix_ordering(self):
        assert order_preserving_hash("ab") < order_preserving_hash("abc")

    def test_empty_string_smallest(self):
        assert order_preserving_hash("") <= order_preserving_hash("a")

    def test_bytes_supported(self):
        assert order_preserving_hash(b"aa") < order_preserving_hash(b"ab")

    def test_null_rejected(self):
        with pytest.raises(ValueError):
            order_preserving_hash(None)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            order_preserving_hash(["a", "list"])

    @given(st.integers(min_value=-(10**12), max_value=10**12), st.integers(min_value=-(10**12), max_value=10**12))
    def test_integers_preserve_order(self, a, b):
        if a < b:
            assert order_preserving_hash(a) < order_preserving_hash(b)
        elif a == b:
            assert order_preserving_hash(a) == order_preserving_hash(b)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=6),
           st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=6))
    def test_short_ascii_strings_preserve_order(self, a, b):
        # The hash folds only a prefix; strings within the prefix length
        # must order exactly.
        ha, hb = order_preserving_hash(a), order_preserving_hash(b)
        if a < b:
            assert ha <= hb
        if ha < hb:
            assert a < b


class TestStringHash:
    def test_deterministic(self):
        assert string_hash("hello world") == string_hash("hello world")

    def test_different_strings_usually_differ(self):
        assert string_hash("hello") != string_hash("world")

    def test_bytes_and_str_agree(self):
        assert string_hash("abc") == string_hash(b"abc")

    def test_range_is_32_bit(self):
        assert 0 <= string_hash("x" * 1000) <= 0xFFFFFFFF


class TestValueWidth:
    def test_int_width_is_one(self):
        assert value_width("INT") == 1.0

    def test_real_width_matches_paper(self):
        assert value_width("REAL") == 1e-35

    def test_case_insensitive(self):
        assert value_width("int") == value_width("INT")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            value_width("FROBNICATOR")


class TestWordTokens:
    def test_simple_split(self):
        assert word_tokens("hello world") == ["hello", "world"]

    def test_any_amount_of_whitespace(self):
        assert word_tokens("  a \t b\n\nc ") == ["a", "b", "c"]

    def test_empty(self):
        assert word_tokens("") == []

    def test_punctuation_stays_attached(self):
        # The paper's definition is whitespace-separated sequences only.
        assert word_tokens("foo, bar.") == ["foo,", "bar."]
