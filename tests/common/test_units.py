"""Unit tests for unit conversions."""

import pytest

from repro.common import (
    DEFAULT_PAGE_SIZE,
    KiB,
    MiB,
    MINUTE,
    SECOND,
    bytes_to_pages,
    pages_to_bytes,
)


def test_page_size_is_4k():
    assert DEFAULT_PAGE_SIZE == 4096


def test_minute_in_microseconds():
    assert MINUTE == 60 * SECOND == 60_000_000


def test_bytes_to_pages_exact():
    assert bytes_to_pages(8 * KiB) == 2


def test_bytes_to_pages_rounds_up():
    assert bytes_to_pages(1) == 1
    assert bytes_to_pages(4 * KiB + 1) == 2


def test_bytes_to_pages_zero():
    assert bytes_to_pages(0) == 0


def test_bytes_to_pages_custom_page_size():
    assert bytes_to_pages(5 * KiB, page_size=KiB) == 5


def test_bytes_to_pages_negative_rejected():
    with pytest.raises(ValueError):
        bytes_to_pages(-1)


def test_pages_to_bytes_roundtrip():
    assert pages_to_bytes(bytes_to_pages(1 * MiB)) == 1 * MiB


def test_pages_to_bytes_negative_rejected():
    with pytest.raises(ValueError):
        pages_to_bytes(-2)
