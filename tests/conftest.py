"""Suite-wide fixtures: runtime sanitizers default ON under pytest.

Every ``Server()`` constructed by a test runs in debug mode (pin-leak
detector, governor accounting cross-checks, clock/GClock assertions)
unless the test opts out with ``@pytest.mark.no_sanitize`` or passes
``sanitize=False`` explicitly.
"""

import pytest

from repro.analysis import sanitizers


@pytest.fixture(autouse=True)
def _sanitizers_on(request):
    enable = request.node.get_closest_marker("no_sanitize") is None
    previous = sanitizers.set_sanitizers_enabled(enable)
    try:
        yield
    finally:
        sanitizers.set_sanitizers_enabled(previous)
