"""Unit tests for DTT calibration against simulated devices."""

import pytest

from repro.common import KiB, SimClock
from repro.common.errors import CalibrationError
from repro.dtt import (
    DTTCurve,
    approximate_write_curve,
    calibrate_device,
    calibrate_read_curve,
)
from repro.storage import FlashDisk, RotationalDisk


def test_calibrated_hdd_curve_rises_with_band():
    disk = RotationalDisk(SimClock(), 2_000_000, seed=11)
    curve = calibrate_read_curve(disk, samples_per_band=48, seed=5)
    assert curve.cost_us(1) < curve.cost_us(1024) < curve.cost_us(65536)


def test_calibrated_flash_curve_is_flat():
    disk = FlashDisk(SimClock(), 2_000_000, read_us=400)
    curve = calibrate_read_curve(disk, samples_per_band=16)
    assert curve.cost_us(1) == pytest.approx(curve.cost_us(65536), rel=0.05)


def test_bands_clamped_to_device_size():
    disk = FlashDisk(SimClock(), 100)
    curve = calibrate_read_curve(disk, bands=(1, 10, 10_000), samples_per_band=4)
    assert curve.points[-1][0] == 100


def test_empty_device_rejected():
    class EmptyDevice:
        size_pages = 0

    with pytest.raises(CalibrationError):
        calibrate_read_curve(EmptyDevice())


def test_zero_samples_rejected():
    disk = FlashDisk(SimClock(), 100)
    with pytest.raises(CalibrationError):
        calibrate_read_curve(disk, samples_per_band=0)


def test_calibration_deterministic_for_seed():
    def run():
        disk = RotationalDisk(SimClock(), 500_000, seed=9)
        return calibrate_read_curve(disk, samples_per_band=16, seed=2).points

    assert run() == run()


class TestWriteApproximation:
    def test_write_below_read_at_large_band(self):
        read = DTTCurve([(1, 100), (1000, 8000)])
        write = approximate_write_curve(read)
        assert write.cost_us(1000) < read.cost_us(1000)

    def test_write_close_to_read_at_band_one(self):
        read = DTTCurve([(1, 100), (1000, 8000)])
        write = approximate_write_curve(read)
        assert write.cost_us(1) == pytest.approx(95, rel=0.01)

    def test_single_point_read_curve(self):
        write = approximate_write_curve(DTTCurve([(1, 400)]))
        assert write.cost_us(1) == pytest.approx(380)


def test_calibrate_device_builds_full_model():
    disk = RotationalDisk(SimClock(), 1_000_000, seed=4)
    model = calibrate_device(disk, page_size=4 * KiB, samples_per_band=24)
    read_big = model.cost_us("read", 4 * KiB, 10_000)
    write_big = model.cost_us("write", 4 * KiB, 10_000)
    assert write_big < read_big
    assert model.cost_us("read", 4 * KiB, 1) < read_big


class TestWriteCalibration:
    """Section 6 future work: measure writes directly on removable media."""

    def test_flash_write_approximation_is_backwards(self):
        """The read-derived approximation claims writes are cheaper; on
        flash the truth is the opposite — motivating direct measurement."""
        from repro.dtt import calibrate_write_curve

        disk = FlashDisk(SimClock(), 131_072, read_us=390, write_us=1180)
        read_curve = calibrate_read_curve(disk, samples_per_band=16)
        approximated = approximate_write_curve(read_curve)
        measured = calibrate_write_curve(disk, samples_per_band=16)
        band = 1024
        assert approximated.cost_us(band) < read_curve.cost_us(band)
        assert measured.cost_us(band) > read_curve.cost_us(band)
        assert measured.cost_us(band) == pytest.approx(1180, rel=0.05)

    def test_measure_writes_flag(self):
        disk = FlashDisk(SimClock(), 131_072, read_us=390, write_us=1180)
        default_model = calibrate_device(disk, 4 * KiB, samples_per_band=8)
        honest_model = calibrate_device(
            disk, 4 * KiB, samples_per_band=8, measure_writes=True
        )
        assert default_model.cost_us("write", 4 * KiB, 100) < 390
        assert honest_model.cost_us("write", 4 * KiB, 100) > 1000

    def test_rotational_approximation_remains_reasonable(self):
        """On spinning disks the approximation is directionally right, so
        the default stays the paper's behaviour."""
        from repro.dtt import calibrate_write_curve

        disk = RotationalDisk(SimClock(), 1_000_000, seed=6)
        read_curve = calibrate_read_curve(disk, samples_per_band=24, seed=6)
        measured = calibrate_write_curve(disk, samples_per_band=24, seed=6)
        approximated = approximate_write_curve(read_curve)
        band = 10_000
        # Both agree that rotational writes undercut reads at large bands.
        assert measured.cost_us(band) < read_curve.cost_us(band)
        assert approximated.cost_us(band) < read_curve.cost_us(band)

    def test_write_calibration_validation(self):
        from repro.common.errors import CalibrationError
        from repro.dtt import calibrate_write_curve

        disk = FlashDisk(SimClock(), 100)
        with pytest.raises(CalibrationError):
            calibrate_write_curve(disk, samples_per_band=0)
