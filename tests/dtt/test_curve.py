"""Unit tests for DTT curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtt import DTTCurve


def simple_curve():
    return DTTCurve([(1, 100), (10, 1000), (100, 5000)])


def test_exact_points():
    curve = simple_curve()
    assert curve.cost_us(1) == 100
    assert curve.cost_us(10) == 1000
    assert curve.cost_us(100) == 5000


def test_clamps_below_first_point():
    assert simple_curve().cost_us(1) == 100


def test_clamps_above_last_point():
    assert simple_curve().cost_us(10_000) == 5000


def test_interpolates_log_linear():
    curve = DTTCurve([(1, 0), (100, 200)])
    # band 10 is the geometric midpoint of [1, 100].
    assert curve.cost_us(10) == pytest.approx(100)


def test_monotone_between_monotone_points():
    curve = simple_curve()
    costs = [curve.cost_us(band) for band in (1, 2, 5, 10, 30, 60, 100)]
    assert costs == sorted(costs)


def test_rejects_empty():
    with pytest.raises(ValueError):
        DTTCurve([])


def test_rejects_band_below_one():
    with pytest.raises(ValueError):
        DTTCurve([(0, 100)])


def test_rejects_negative_cost():
    with pytest.raises(ValueError):
        DTTCurve([(1, -5)])


def test_rejects_duplicate_band():
    with pytest.raises(ValueError):
        DTTCurve([(4, 10), (4, 20)])


def test_rejects_query_below_one():
    with pytest.raises(ValueError):
        simple_curve().cost_us(0)


def test_points_sorted_regardless_of_input_order():
    curve = DTTCurve([(100, 5000), (1, 100), (10, 1000)])
    assert [band for band, __ in curve.points] == [1, 10, 100]


def test_scaled():
    curve = simple_curve().scaled(2.0)
    assert curve.cost_us(1) == 200
    assert curve.cost_us(100) == 10000


def test_scaled_rejects_negative():
    with pytest.raises(ValueError):
        simple_curve().scaled(-1)


def test_roundtrip_dict():
    curve = simple_curve()
    assert DTTCurve.from_dict(curve.to_dict()) == curve


def test_single_point_curve_is_flat():
    curve = DTTCurve([(1, 400)])
    assert curve.cost_us(1) == 400
    assert curve.cost_us(1_000_000) == 400


@given(st.floats(min_value=1, max_value=1e6))
def test_cost_always_within_envelope(band):
    curve = simple_curve()
    assert 100 <= curve.cost_us(band) <= 5000
