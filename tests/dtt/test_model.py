"""Unit tests for DTT models, including the paper's shape constraints."""

import pytest

from repro.common import KiB
from repro.dtt import DTTCurve, DTTModel, default_dtt_model, flash_dtt_model
from repro.dtt.model import READ, WRITE


class TestDTTModel:
    def test_set_and_get_curve(self):
        model = DTTModel("m")
        curve = DTTCurve([(1, 10)])
        model.set_curve(READ, 4 * KiB, curve)
        assert model.curve(READ, 4 * KiB) is curve

    def test_cost_us_delegates(self):
        model = DTTModel("m")
        model.set_curve(READ, 4 * KiB, DTTCurve([(1, 10), (100, 100)]))
        assert model.cost_us(READ, 4 * KiB, 1) == 10

    def test_missing_operation_raises(self):
        model = DTTModel("m")
        with pytest.raises(KeyError):
            model.curve(WRITE, 4 * KiB)

    def test_invalid_operation_rejected(self):
        model = DTTModel("m")
        with pytest.raises(ValueError):
            model.set_curve("erase", 4 * KiB, DTTCurve([(1, 10)]))

    def test_nearest_page_size_scales(self):
        model = DTTModel("m")
        model.set_curve(READ, 4 * KiB, DTTCurve([(1, 100)]))
        # 8K has no exact curve: the 4K curve is scaled by 2.
        assert model.cost_us(READ, 8 * KiB, 1) == pytest.approx(200)

    def test_page_sizes_listing(self):
        model = default_dtt_model()
        assert model.page_sizes(READ) == [4 * KiB, 8 * KiB]

    def test_roundtrip_dict(self):
        model = default_dtt_model()
        clone = DTTModel.from_dict(model.to_dict())
        assert clone.name == model.name
        for op in (READ, WRITE):
            for size in model.page_sizes(op):
                for band in (1, 7, 300, 3500):
                    assert clone.cost_us(op, size, band) == model.cost_us(op, size, band)


class TestDefaultModelShape:
    """Figure 2(a) shape constraints from the paper."""

    @pytest.fixture
    def model(self):
        return default_dtt_model()

    def test_sequential_is_cheapest(self, model):
        for op in (READ, WRITE):
            seq = model.cost_us(op, 4 * KiB, 1)
            for band in (10, 100, 1000, 3500):
                assert seq < model.cost_us(op, 4 * KiB, band)

    def test_cost_monotone_in_band(self, model):
        bands = [1, 4, 16, 64, 256, 1024, 2048, 3500]
        for op in (READ, WRITE):
            costs = [model.cost_us(op, 4 * KiB, band) for band in bands]
            assert costs == sorted(costs)

    def test_writes_cheaper_than_reads_at_large_bands(self, model):
        # "each write curve ... illustrates a lower amortized cost than its
        # corresponding read curve for larger band sizes"
        for size in (4 * KiB, 8 * KiB):
            for band in (64, 256, 1024, 3500):
                assert model.cost_us(WRITE, size, band) < model.cost_us(READ, size, band)

    def test_8k_costs_more_than_4k(self, model):
        for op in (READ, WRITE):
            for band in (1, 100, 3500):
                assert model.cost_us(op, 8 * KiB, band) > model.cost_us(op, 4 * KiB, band)


class TestFlashModelShape:
    """Figure 3: uniform random access times on SD storage."""

    @pytest.fixture
    def model(self):
        return flash_dtt_model()

    def test_read_flat_across_bands(self, model):
        costs = [model.cost_us(READ, 4 * KiB, band) for band in (1, 200, 4296, 100000)]
        assert max(costs) <= min(costs) * 1.10

    def test_writes_cost_more_than_reads(self, model):
        for band in (1, 1000):
            assert model.cost_us(WRITE, 4 * KiB, band) > model.cost_us(READ, 4 * KiB, band)

    def test_smaller_pages_cheaper(self, model):
        assert model.cost_us(READ, 2 * KiB, 100) < model.cost_us(READ, 4 * KiB, 100)
