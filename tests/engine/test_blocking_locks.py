"""Blocking lock manager: park-and-complete, deadlocks, determinism.

The contract under test is the PR's thesis: a blocked lock request under
the workload scheduler is *not* a statement abort.  The session parks on
the holder's release queue, wakes in seeded (byte-reproducible) order,
and completes; only a waits-for cycle or an external-holder stall aborts
anything, and then exactly one deterministic victim.
"""

import pytest

from repro import Server, ServerConfig
from repro.analysis.sanitizers import LockInvariantError
from repro.engine import WorkloadScheduler
from repro.engine.locks import (
    IX,
    X,
    LockConflictError,
    LockDeadlockError,
    LockManager,
)
from repro.engine.scheduler import DONE, YIELD_STATEMENT
from repro.storage.rowstore import RowId


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    return Server(ServerConfig(**kwargs))


def seed_table(server, rows=300):
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, 0) for i in range(rows)])
    return connection


def hot_row_statements(n=5):
    def source(connection):
        for __ in range(n):
            yield "UPDATE t SET v = v + 1 WHERE id = 0"
    return source


def run_hot_row(seed, n_sessions=4, n=5, **server_kwargs):
    server = make_server(**server_kwargs)
    connection = seed_table(server)
    scheduler = WorkloadScheduler(server, seed=seed)
    for k in range(n_sessions):
        scheduler.add_session("s%d" % k, hot_row_statements(n))
    report = scheduler.run()
    return server, connection, scheduler, report


class TestParkAndComplete:
    def test_blocked_updates_complete_without_abort(self):
        server, conn, scheduler, report = run_hot_row(seed=3)
        # Every statement completed; contention caused waits, not aborts.
        assert report["statement_errors"] == 0
        assert all(s.status == DONE for s in scheduler.sessions)
        assert server.lock_manager.waits > 0
        assert server.lock_manager.deadlocks == 0
        v = conn.execute("SELECT v FROM t WHERE id = 0").rows[0][0]
        assert v == 4 * 5  # no increment lost, none doubled

    def test_waits_appear_in_the_trace(self):
        __, __, scheduler, __ = run_hot_row(seed=3)
        lines = scheduler.trace_lines()
        assert "wait:lock" in lines
        assert "lock-granted" in lines

    def test_same_seed_traces_byte_identical_with_deep_queues(self):
        __, __, a, __ = run_hot_row(seed=11, n_sessions=5, n=6)
        __, __, b, __ = run_hot_row(seed=11, n_sessions=5, n=6)
        assert a.trace_lines() == b.trace_lines()
        assert "wait:lock" in a.trace_lines()

    def test_fail_fast_config_restores_old_behavior(self):
        server, __, scheduler, report = run_hot_row(
            seed=3, blocking_locks=False
        )
        # The baseline mode: conflicts abort statements instead of waiting.
        assert server.lock_manager.waits == 0
        assert report["statement_errors"] > 0
        assert all(s.status == DONE for s in scheduler.sessions)


def crossing_txn(first, second, holder):
    """One explicit transaction updating ``first`` then ``second``.

    Yields the baton between the two updates (the table is tiny, so
    without the explicit offer there is no pool-miss yield and the
    transactions would never interleave).
    """
    def run_txn(conn):
        conn.execute("BEGIN")
        try:
            conn.execute("UPDATE t SET v = v + 1 WHERE id = %d" % first)
            holder[0].yield_point(YIELD_STATEMENT, always=True)
            conn.execute("UPDATE t SET v = v + 1 WHERE id = %d" % second)
            conn.execute("COMMIT")
        except LockConflictError:
            if conn._txn_id is not None:
                conn.rollback()
            raise
    run_txn.__name__ = "txn:%d->%d" % (first, second)
    return [run_txn]


def run_crossing(seed, orders=((1, 2), (2, 1))):
    server = make_server()
    connection = seed_table(server, rows=10)
    scheduler = WorkloadScheduler(server, seed=seed, switch_rate=0.9)
    holder = [scheduler]
    for k, (first, second) in enumerate(orders):
        scheduler.add_session("x%d" % k, crossing_txn(first, second, holder))
    report = scheduler.run()
    return server, connection, scheduler, report


class TestDeadlockDetection:
    def _deadlocking_seeds(self, seeds=range(1, 25)):
        found = []
        for seed in seeds:
            server, conn, scheduler, report = run_crossing(seed)
            if server.lock_manager.deadlocks:
                found.append((seed, server, conn, scheduler, report))
        return found

    def test_crossing_transactions_deadlock_and_one_victim_dies(self):
        found = self._deadlocking_seeds()
        assert found, "no seed produced the waits-for cycle"
        for seed, server, conn, scheduler, report in found:
            # Exactly one victim; the survivor committed both updates and
            # the victim rolled back cleanly — rows advanced exactly once.
            assert server.lock_manager.deadlocks == 1
            assert report["statement_errors"] == 1
            assert all(s.status == DONE for s in scheduler.sessions)
            errors = [e for s in scheduler.sessions for e in s.errors]
            assert len(errors) == 1
            assert "LockDeadlockError" in errors[0][1]
            rows = dict(
                conn.execute("SELECT id, v FROM t WHERE id IN (1, 2)").rows
            )
            assert rows == {1: 1, 2: 1}

    def test_victim_choice_is_deterministic(self):
        found = self._deadlocking_seeds()
        assert found
        seed = found[0][0]
        __, __, a, __ = run_crossing(seed)
        __, __, b, __ = run_crossing(seed)
        assert a.trace_lines() == b.trace_lines()
        assert "lock-victim" in a.trace_lines() or any(
            "LockDeadlockError" in e[1]
            for s in a.sessions for e in s.errors
        )

    def test_no_deadlock_when_transactions_agree_on_order(self):
        server, connection, scheduler, report = run_crossing(
            seed=5, orders=((1, 2), (1, 2))
        )
        assert server.lock_manager.deadlocks == 0
        assert report["statement_errors"] == 0
        rows = dict(
            connection.execute("SELECT id, v FROM t WHERE id IN (1, 2)").rows
        )
        assert rows == {1: 2, 2: 2}


class TestExternalHolderStall:
    def test_stalled_sessions_are_victimized_not_hung(self):
        server = make_server()
        connection = seed_table(server, rows=10)
        # A plain driver connection (never scheduled) holds the hot row.
        connection.begin()
        connection.execute("UPDATE t SET v = v + 1 WHERE id = 0")
        scheduler = WorkloadScheduler(server, seed=2)
        scheduler.add_session("w0", hot_row_statements(n=2))
        scheduler.add_session("w1", hot_row_statements(n=2))
        report = scheduler.run()  # must terminate
        assert server.lock_manager.stalls > 0
        assert "lock-stall-victim" in scheduler.trace_lines()
        assert all(s.status == DONE for s in scheduler.sessions)
        # Every statement failed (the external holder never released)...
        assert report["statement_errors"] == 2 * 2
        connection.commit()
        # ...and the external transaction's own work survived untouched.
        v = connection.execute("SELECT v FROM t WHERE id = 0").rows[0][0]
        assert v == 1


class TestTableLocks:
    def test_ddl_conflicts_with_inflight_dml(self):
        server = make_server()
        writer = seed_table(server, rows=10)
        writer.begin()
        writer.execute("UPDATE t SET v = v + 1 WHERE id = 3")
        other = server.connect()
        # Fail-fast (no scheduler): DROP cannot barge past the IX holder.
        with pytest.raises(LockConflictError):
            other.execute("DROP TABLE t")
        writer.commit()
        other.execute("DROP TABLE t")

    def test_intention_locks_are_compatible_across_writers(self):
        server = make_server()
        a = seed_table(server, rows=10)
        b = server.connect()
        a.begin()
        b.begin()
        a.execute("UPDATE t SET v = v + 1 WHERE id = 1")
        b.execute("UPDATE t SET v = v + 1 WHERE id = 2")  # no conflict
        assert server.lock_manager.table_lock_mode(a._txn_id, "t") == IX
        assert server.lock_manager.table_lock_mode(b._txn_id, "t") == IX
        a.commit()
        b.commit()

    def test_ddl_takes_and_releases_table_x(self):
        server = make_server()
        connection = server.connect()
        connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        # The DDL transaction released everything at statement end.
        assert server.lock_manager.waiting_count() == 0
        assert not server.lock_manager._table_locks


class TestLockSanitizers:
    def _manager(self, server, sanitize):
        return LockManager(
            server.volume.create_file("locks-under-test"), server.pool,
            sanitize=sanitize,
        )

    def test_release_miss_raises_under_sanitize(self):
        server = make_server()
        manager = self._manager(server, sanitize=True)
        row = RowId(0, 3)
        manager.acquire(7, "t", row)
        manager._table.remove(("t", 0, 3))  # corrupt the bookkeeping
        with pytest.raises(LockInvariantError):
            manager.release_all(7)
        assert manager.release_misses == 1

    def test_release_miss_is_counted_not_fatal_without_sanitize(self):
        server = make_server()
        manager = self._manager(server, sanitize=False)
        row = RowId(0, 3)
        manager.acquire(7, "t", row)
        manager._table.remove(("t", 0, 3))
        manager.release_all(7)  # absorbed
        assert manager.release_misses == 1

    def test_grant_over_live_holder_raises_under_sanitize(self):
        server = make_server()
        manager = self._manager(server, sanitize=True)
        manager.acquire(1, "t", RowId(0, 3))
        with pytest.raises(LockInvariantError):
            manager._install(("t", 0, 3), 2, X)


class TestLockMetrics:
    def test_all_lock_metrics_registered(self):
        server = make_server()
        for name in (
            "locks.conflicts", "locks.waits", "locks.deadlocks",
            "locks.stalls", "locks.release_miss", "locks.table_pages",
        ):
            assert name in server.metrics.names()

    def test_wait_counters_flow_to_the_registry(self):
        server, __, __, __ = run_hot_row(seed=3)
        snapshot = server.metrics.snapshot()
        assert snapshot["locks.waits"] > 0
        assert snapshot["locks.conflicts"] > 0
        assert snapshot["locks.deadlocks"] == 0

    def test_metrics_survive_crash_recreation(self):
        server = make_server()
        seed_table(server, rows=10)
        server.crash()
        server.restart()
        assert "locks.waits" in server.metrics.names()
