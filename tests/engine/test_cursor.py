"""Tests for cursors with incremental FETCH and fiber-style scheduling."""

import pytest

from repro import Server, ServerConfig
from repro.buffer import PageKind
from repro.common.errors import ExecutionError
from repro.engine import FiberScheduler


@pytest.fixture
def conn():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=64))
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i * 10) for i in range(200)])
    return connection


class TestCursor:
    def test_fetchone_streams(self, conn):
        cursor = conn.open_cursor("SELECT id FROM t ORDER BY id")
        assert cursor.fetchone() == (0,)
        assert cursor.fetchone() == (1,)
        cursor.close()

    def test_fetchmany_and_exhaustion(self, conn):
        cursor = conn.open_cursor("SELECT id FROM t WHERE id < 10")
        first = cursor.fetchmany(7)
        rest = cursor.fetchmany(7)
        empty = cursor.fetchmany(7)
        assert len(first) == 7
        assert len(rest) == 3
        assert empty == []
        assert cursor.exhausted
        cursor.close()

    def test_fetchall_matches_execute(self, conn):
        cursor = conn.open_cursor("SELECT id, v FROM t WHERE v > 1500")
        assert sorted(cursor.fetchall()) == sorted(
            conn.execute("SELECT id, v FROM t WHERE v > 1500").rows
        )
        cursor.close()

    def test_columns_metadata(self, conn):
        cursor = conn.open_cursor("SELECT id, v FROM t")
        assert cursor.columns == [("id", "INT"), ("v", "INT")]
        cursor.close()

    def test_closed_cursor_rejects_fetch(self, conn):
        cursor = conn.open_cursor("SELECT id FROM t")
        cursor.close()
        with pytest.raises(ExecutionError):
            cursor.fetchone()

    def test_non_select_rejected(self, conn):
        with pytest.raises(ExecutionError):
            conn.open_cursor("DELETE FROM t")

    def test_cursor_counts_as_active_request(self, conn):
        governor = conn.server.memory_governor
        cursor_a = conn.open_cursor("SELECT id FROM t")
        cursor_b = conn.open_cursor("SELECT v FROM t")
        assert governor.active_requests == 2
        cursor_a.close()
        cursor_b.close()
        assert governor.active_requests == 1  # floor: never below one

    def test_suspended_cursor_heap_is_stealable(self, conn):
        """Between fetches the cursor's heap pages can be stolen and are
        swizzled back in on the next FETCH (Section 2.1)."""
        server = conn.server
        cursor = conn.open_cursor("SELECT id FROM t ORDER BY id")
        cursor.fetchmany(5)
        # Flood the small pool with table pages while the cursor sleeps.
        filler = server.volume.create_file("filler")
        for i in range(100):
            frame = server.pool.new_page(filler, PageKind.TABLE, payload=i)
            server.pool.unpin(frame)
        assert cursor.heap.resident_count() == 0  # stolen while suspended
        assert cursor.fetchmany(5) == [(i,) for i in range(5, 10)]
        assert cursor.heap.swizzle_count >= 1
        cursor.close()


class TestFiberScheduler:
    def test_interleaved_cursors_all_correct(self, conn):
        scheduler = FiberScheduler(batch_size=8)
        scheduler.add("low", conn.open_cursor(
            "SELECT id FROM t WHERE id < 60 ORDER BY id"
        ))
        scheduler.add("high", conn.open_cursor(
            "SELECT id FROM t WHERE id >= 150 ORDER BY id"
        ))
        scheduler.add("all", conn.open_cursor("SELECT id FROM t ORDER BY id"))
        results = scheduler.run()
        assert len(results["all"]) == 200
        assert len(results["high"]) == 50
        assert results["low"] == [(i,) for i in range(60)]

    def test_round_robin_interleaving_observed(self, conn):
        scheduler = FiberScheduler(batch_size=4)
        scheduler.add("a", conn.open_cursor("SELECT id FROM t"))
        scheduler.add("b", conn.open_cursor("SELECT id FROM t"))
        scheduler.run()
        trace = scheduler.schedule_trace
        # Genuine interleaving: "a" and "b" alternate, not a then b.
        first_b = trace.index("b")
        last_a = len(trace) - 1 - trace[::-1].index("a")
        assert first_b < last_a

    def test_callbacks_receive_batches(self, conn):
        seen = []
        scheduler = FiberScheduler(batch_size=16)
        scheduler.add(
            "cb", conn.open_cursor("SELECT id FROM t WHERE id < 40"),
            on_rows=seen.extend,
        )
        scheduler.run()
        assert len(seen) == 40

    def test_all_tasks_released_after_run(self, conn):
        governor = conn.server.memory_governor
        scheduler = FiberScheduler()
        for i in range(3):
            scheduler.add("c%d" % i, conn.open_cursor("SELECT id FROM t"))
        assert governor.active_requests == 3
        scheduler.run()
        assert governor.active_requests == 1
