"""Tests for the Section 6 future-work features implemented as extensions:
REORGANIZE TABLE, crash recovery from the transaction log, and the
adaptive multiprogramming level.
"""

import random

import pytest

from repro import Server, ServerConfig
from repro.buffer import BufferPool
from repro.common import SimClock
from repro.common.errors import ExecutionError, TransactionError
from repro.exec import MemoryGovernor
from repro.profiling.metrics import MetricsRegistry
from repro.storage import FlashDisk, Volume


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    kwargs.setdefault("initial_pool_pages", 512)
    return Server(ServerConfig(**kwargs))


class TestReorganizeTable:
    def loaded(self, order="shuffled"):
        server = make_server()
        conn = server.connect()
        conn.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, grp INT, v DOUBLE)"
        )
        # 500 groups of 10 rows: genuine fragmentation after shuffling.
        rows = [(i, i % 500, float(i)) for i in range(5000)]
        if order == "shuffled":
            random.Random(3).shuffle(rows)
        server.load_table("t", rows)
        conn.execute("CREATE INDEX t_grp ON t (grp)")
        return server, conn

    def test_reorganize_improves_clustering(self):
        server, conn = self.loaded()
        index = server.catalog.index("t_grp")
        before = index.btree.clustering_fraction()
        result = conn.execute("REORGANIZE TABLE t ON t_grp")
        index = server.catalog.index("t_grp")
        after = index.btree.clustering_fraction()
        assert result.notes["rows"] == 5000
        assert after > before
        assert after > 0.9

    def test_data_survives_reorganize(self):
        server, conn = self.loaded()
        checksum_before = conn.execute(
            "SELECT COUNT(*), SUM(v) FROM t"
        ).rows
        conn.execute("REORGANIZE TABLE t ON t_grp")
        assert conn.execute("SELECT COUNT(*), SUM(v) FROM t").rows == checksum_before
        # Point lookups through every index still work.
        assert conn.execute("SELECT COUNT(*) FROM t WHERE grp = 7").rows == [(10,)]
        assert conn.execute("SELECT v FROM t WHERE id = 42").rows == [(42.0,)]

    def test_reorganize_speeds_up_clustered_queries(self):
        server, conn = self.loaded()
        sql = "SELECT SUM(v) FROM t WHERE grp = 7"

        def timed():
            server.pool.set_capacity(1)
            server.pool.set_capacity(512)
            start = server.clock.now
            conn.execute(sql)
            return server.clock.now - start

        before_us = timed()
        conn.execute("REORGANIZE TABLE t ON t_grp")
        after_us = timed()
        assert after_us < before_us

    def test_default_index_is_primary_key(self):
        server, conn = self.loaded()
        result = conn.execute("REORGANIZE TABLE t")
        assert result.notes["clustered_on"] == "pk_t"

    def test_rejects_foreign_index(self):
        server, conn = self.loaded()
        conn.execute("CREATE TABLE other (id INT PRIMARY KEY)")
        with pytest.raises(ExecutionError):
            conn.execute("REORGANIZE TABLE other ON t_grp")

    def test_rejects_inside_transaction(self):
        server, conn = self.loaded()
        conn.execute("BEGIN")
        with pytest.raises(TransactionError):
            conn.execute("REORGANIZE TABLE t ON t_grp")
        conn.execute("ROLLBACK")

    def test_rejects_unindexed_table(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE bare (a INT)")
        with pytest.raises(ExecutionError):
            conn.execute("REORGANIZE TABLE bare")


class TestCrashRecovery:
    def test_committed_changes_survive(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        conn.execute("UPDATE t SET v = 'B' WHERE id = 2")
        conn.execute("DELETE FROM t WHERE id = 3")
        server.simulate_crash_and_recover()
        assert sorted(conn.execute("SELECT * FROM t").rows) == [
            (1, "a"), (2, "B"),
        ]

    def test_uncommitted_changes_lost(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a')")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (2, 'ghost')")
        conn._txn_id = None  # the connection dies with the crash
        server.simulate_crash_and_recover()
        assert conn.execute("SELECT * FROM t").rows == [(1, "a")]

    def test_indexes_rebuilt(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, g INT)")
        conn.execute("CREATE INDEX t_g ON t (g)")
        for i in range(200):
            conn.execute("INSERT INTO t VALUES (%d, %d)" % (i, i % 10))
        server.simulate_crash_and_recover()
        # Index probes return the right rows after recovery.
        result = conn.execute("SELECT COUNT(*) FROM t WHERE g = 3")
        assert result.rows == [(20,)]
        index = server.catalog.index("t_g")
        assert index.btree.stats.entry_count == 200

    def test_row_id_remapping_through_delete_and_reinsert(self):
        """Deleted slots get reused; recovery must remap row ids."""
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        conn.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        conn.execute("DELETE FROM t WHERE id = 1")
        conn.execute("INSERT INTO t VALUES (4, 40)")  # reuses slot of id=1
        conn.execute("UPDATE t SET v = 44 WHERE id = 4")
        server.simulate_crash_and_recover()
        assert sorted(conn.execute("SELECT * FROM t").rows) == [
            (2, 20), (3, 30), (4, 44),
        ]

    def test_multiple_crashes(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1)")
        server.simulate_crash_and_recover()
        conn.execute("INSERT INTO t VALUES (2)")
        server.simulate_crash_and_recover()
        assert sorted(conn.execute("SELECT * FROM t").rows) == [(1,), (2,)]


class TestAdaptiveMpl:
    def make_governor(self, mpl=8, adaptive=True):
        volume = Volume(FlashDisk(SimClock(), 100_000))
        pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
        return MemoryGovernor(pool, 8192, multiprogramming_level=mpl,
                              adaptive=adaptive)

    def run_window(self, governor, soft_hits_per_task, concurrency=1):
        for __ in range(governor.ADAPT_WINDOW):
            tasks = [governor.begin_task() for __c in range(concurrency)]
            for task in tasks:
                task.soft_limit_hits = soft_hits_per_task
            for task in tasks:
                governor.end_task(task)

    def test_contention_lowers_level(self):
        governor = self.make_governor(mpl=8)
        self.run_window(governor, soft_hits_per_task=3)
        assert governor.multiprogramming_level == 4
        self.run_window(governor, soft_hits_per_task=3)
        assert governor.multiprogramming_level == 2

    def test_idle_high_concurrency_raises_level(self):
        governor = self.make_governor(mpl=2)
        self.run_window(governor, soft_hits_per_task=0, concurrency=4)
        assert governor.multiprogramming_level == 4

    def test_level_stays_put_without_signal(self):
        governor = self.make_governor(mpl=4)
        # No contention, concurrency below the level: no change.
        self.run_window(governor, soft_hits_per_task=0, concurrency=2)
        assert governor.multiprogramming_level == 4

    def test_bounds_respected(self):
        governor = self.make_governor(mpl=1)
        self.run_window(governor, soft_hits_per_task=5)
        assert governor.multiprogramming_level == 1  # MIN_MPL floor
        governor = self.make_governor(mpl=64)
        self.run_window(governor, soft_hits_per_task=0, concurrency=100)
        assert governor.multiprogramming_level == 64  # MAX_MPL ceiling

    def test_changes_recorded(self):
        governor = self.make_governor(mpl=8)
        self.run_window(governor, soft_hits_per_task=3)
        assert governor.mpl_changes == [(governor.ADAPT_WINDOW, 8, 4)]

    def test_soft_limit_follows_adapted_level(self):
        governor = self.make_governor(mpl=8)
        before = governor.soft_limit_pages()
        self.run_window(governor, soft_hits_per_task=3)
        assert governor.soft_limit_pages() == before * 2

    def test_non_adaptive_by_default(self):
        governor = self.make_governor(mpl=8, adaptive=False)
        self.run_window(governor, soft_hits_per_task=5)
        assert governor.multiprogramming_level == 8


class TestLockPressureMpl:
    """The lock manager's wait/deadlock counters feed the adaptive MPL:
    deep lock queues mean admitted statements serialise on rows, so
    admitting more only lengthens the queues."""

    def make_governor(self, mpl=8):
        volume = Volume(FlashDisk(SimClock(), 100_000))
        pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
        self.lock_stats = [0, 0]  # cumulative (waits, deadlocks)
        return MemoryGovernor(
            pool, 8192, multiprogramming_level=mpl, adaptive=True,
            lock_stats_fn=lambda: tuple(self.lock_stats),
        )

    def run_window(self, governor, concurrency=1):
        for __ in range(governor.ADAPT_WINDOW):
            tasks = [governor.begin_task() for __c in range(concurrency)]
            for task in tasks:
                governor.end_task(task)

    def test_deep_lock_queues_lower_the_level(self):
        governor = self.make_governor(mpl=8)
        # More than LOCK_WAIT_RATE_LIMIT waits per completed task.
        self.lock_stats[0] = governor.ADAPT_WINDOW
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_any_deadlock_lowers_the_level(self):
        governor = self.make_governor(mpl=8)
        self.lock_stats[1] = 1
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_pressure_is_windowed_not_cumulative(self):
        governor = self.make_governor(mpl=8)
        self.lock_stats[0] = governor.ADAPT_WINDOW
        self.run_window(governor)
        assert governor.multiprogramming_level == 4
        # No *new* waits in the next window: the old cumulative count
        # must not keep halving the level.
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_no_lock_pressure_leaves_the_level_alone(self):
        governor = self.make_governor(mpl=4)
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 4

    def test_raise_arm_survives_quiet_lock_stats(self):
        governor = self.make_governor(mpl=2)
        self.run_window(governor, concurrency=4)
        assert governor.multiprogramming_level == 4

    def test_server_wires_the_lock_manager_counters(self):
        server = make_server()
        governor = server.memory_governor
        assert governor.lock_stats_fn is not None
        assert governor.lock_stats_fn() == (
            server.lock_manager.waits, server.lock_manager.deadlocks
        )


class TestWorkloadSignalMpl:
    """Executor spills and group-commit traffic feed the adaptive MPL
    through the shared metrics registry: spill pressure argues the level
    down (statements are overflowing work memory), bursty commit batches
    argue it up (transactions are queueing behind the log)."""

    def make_governor(self, mpl=8):
        volume = Volume(FlashDisk(SimClock(), 100_000))
        pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
        self.metrics = MetricsRegistry()
        return MemoryGovernor(
            pool, 8192, multiprogramming_level=mpl, adaptive=True,
            metrics=self.metrics,
        )

    def run_window(self, governor, concurrency=1):
        for __ in range(governor.ADAPT_WINDOW):
            tasks = [governor.begin_task() for __c in range(concurrency)]
            for task in tasks:
                governor.end_task(task)

    def test_spill_pressure_lowers_the_level(self):
        governor = self.make_governor(mpl=8)
        # More than SPILL_RATE_LIMIT spill events per completed task.
        self.metrics.counter("exec.spill_events").inc(
            governor.ADAPT_WINDOW
        )
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_spill_pressure_is_windowed_not_cumulative(self):
        governor = self.make_governor(mpl=8)
        self.metrics.counter("exec.spill_events").inc(
            governor.ADAPT_WINDOW
        )
        self.run_window(governor)
        assert governor.multiprogramming_level == 4
        # No *new* spills in the next window: the old cumulative count
        # must not keep halving the level.
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_rare_spills_leave_the_level_alone(self):
        governor = self.make_governor(mpl=8)
        # Well under SPILL_RATE_LIMIT per task: not pressure.
        self.metrics.counter("exec.spill_events").inc(2)
        self.run_window(governor)
        assert governor.multiprogramming_level == 8

    def test_commit_bursts_raise_the_level(self):
        governor = self.make_governor(mpl=4)
        histogram = self.metrics.histogram("wal.group_commit.batch_size")
        # Mean batch >= COMMIT_BURST_BATCH: commits queue behind the log
        # even though concurrency never exceeded the level.
        for __ in range(8):
            histogram.observe(6)
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 8

    def test_small_commit_batches_do_not_raise(self):
        governor = self.make_governor(mpl=4)
        histogram = self.metrics.histogram("wal.group_commit.batch_size")
        for __ in range(8):
            histogram.observe(1)
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 4

    def test_commit_burst_is_windowed_not_cumulative(self):
        governor = self.make_governor(mpl=4)
        histogram = self.metrics.histogram("wal.group_commit.batch_size")
        for __ in range(8):
            histogram.observe(6)
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 8
        # A quiet window (no new flushes) must not keep doubling.
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 8

    def test_spill_pressure_beats_commit_bursts(self):
        governor = self.make_governor(mpl=8)
        self.metrics.histogram("wal.group_commit.batch_size").observe(16)
        self.metrics.counter("exec.spill_events").inc(
            governor.ADAPT_WINDOW
        )
        self.run_window(governor)
        assert governor.multiprogramming_level == 4

    def test_absent_metrics_are_inert(self):
        # A registry without either metric (and rigs without a registry
        # at all) must not perturb the decision.
        governor = self.make_governor(mpl=4)
        self.run_window(governor, concurrency=2)
        assert governor.multiprogramming_level == 4
