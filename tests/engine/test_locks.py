"""Tests for row locking on the disk-based lock table (Section 2.1)."""

import pytest

from repro import Server, ServerConfig
from repro.engine.locks import LockConflictError


@pytest.fixture
def server():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=512))
    conn = server.connect()
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i) for i in range(100)])
    server._bootstrap_conn = conn
    return server


class TestLockingSemantics:
    def test_autocommit_releases_immediately(self, server):
        conn = server._bootstrap_conn
        conn.execute("UPDATE t SET v = 0 WHERE id = 1")
        assert server.lock_manager.total_locks() == 0

    def test_transaction_holds_until_commit(self, server):
        conn = server._bootstrap_conn
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 0 WHERE id < 10")
        assert server.lock_manager.total_locks() == 10
        conn.execute("COMMIT")
        assert server.lock_manager.total_locks() == 0

    def test_rollback_releases(self, server):
        conn = server._bootstrap_conn
        conn.execute("BEGIN")
        conn.execute("DELETE FROM t WHERE id = 5")
        assert server.lock_manager.total_locks() == 1
        conn.execute("ROLLBACK")
        assert server.lock_manager.total_locks() == 0

    def test_cross_connection_conflict(self, server):
        writer = server.connect()
        reader_writer = server.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 99 WHERE id = 7")
        with pytest.raises(LockConflictError):
            reader_writer.execute("UPDATE t SET v = 1 WHERE id = 7")
        # The failed statement's implicit transaction rolled itself back.
        writer.execute("COMMIT")
        # Now the second connection can write.
        reader_writer.execute("UPDATE t SET v = 1 WHERE id = 7")
        assert server._bootstrap_conn.execute(
            "SELECT v FROM t WHERE id = 7"
        ).rows == [(1,)]

    def test_reacquisition_by_holder_is_free(self, server):
        conn = server._bootstrap_conn
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 1 WHERE id = 3")
        conn.execute("UPDATE t SET v = 2 WHERE id = 3")  # same row again
        assert server.lock_manager.total_locks() == 1
        conn.execute("COMMIT")

    def test_selects_do_not_lock(self, server):
        conn = server._bootstrap_conn
        other = server.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 42 WHERE id = 9")
        # Reads proceed despite the write lock (no read locks here).
        assert other.execute("SELECT COUNT(*) FROM t").rows == [(100,)]
        conn.execute("COMMIT")

    def test_no_lock_escalation_ever(self, server):
        """The claim: no lock-table size, no escalation thresholds — a
        transaction may lock every row and the table just grows."""
        conn = server.connect()
        conn.execute("CREATE TABLE big (id INT PRIMARY KEY)")
        server.load_table("big", [(i,) for i in range(5000)])
        conn.execute("BEGIN")
        conn.execute("UPDATE big SET id = id WHERE id >= 0")
        assert server.lock_manager.total_locks() == 5000
        # Still row-granular: another txn can touch table t.
        other = server.connect()
        other.execute("UPDATE t SET v = -1 WHERE id = 0")
        conn.execute("COMMIT")
        assert server.lock_manager.total_locks() == 0
        assert server.lock_manager.lock_table_pages > 1
