"""The workload scheduler: deterministic interleaving, admission, aborts.

These tests drive N concurrent sessions over one server and assert the
three contracts the scheduler makes: same seed → byte-identical
interleaving trace, MPL admission actually gates concurrency, and one
session's fatal error tears the rest down without hanging the run.
"""

import pytest

from repro import Server, ServerConfig
from repro.common.errors import SchedulerDeadlockError
from repro.engine import WorkloadScheduler
from repro.engine.scheduler import ABORTED, DONE, FAILED
from repro.faults import FaultPlan, FaultRates
from repro.storage.log import GroupCommitConfig


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    return Server(ServerConfig(**kwargs))


def seed_table(server, rows=300):
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i % 11) for i in range(rows)])
    return connection


def mixed_statements(k, n=6):
    def source(connection):
        for i in range(n):
            yield "SELECT count(*), sum(v) FROM t WHERE v = %d" % ((i + k) % 11)
            yield "INSERT INTO t VALUES (%d, %d)" % (10_000 + 100 * k + i, k)
    return source


def run_workload(seed, n_sessions=4, **server_kwargs):
    server = make_server(**server_kwargs)
    connection = seed_table(server)
    scheduler = WorkloadScheduler(server, seed=seed)
    for k in range(n_sessions):
        scheduler.add_session("s%d" % k, mixed_statements(k))
    report = scheduler.run()
    return server, connection, scheduler, report


class TestInterleaving:
    def test_all_sessions_complete(self):
        __, conn, scheduler, report = run_workload(seed=1)
        assert report["statements"] == 4 * 12
        assert report["statement_errors"] == 0
        assert all(s.status == DONE for s in scheduler.sessions)
        # Every session's inserts landed.
        count = conn.execute("SELECT count(*) FROM t").rows[0][0]
        assert count == 300 + 4 * 6

    def test_sessions_actually_interleave(self):
        __, __, scheduler, report = run_workload(seed=1)
        assert report["switches"] > 0
        # The trace must not be one session's block followed by the next:
        # some session other than the first appears before the first
        # session's last event.
        names = [line.split()[1] for line in scheduler.trace]
        first = names[0]
        last_of_first = max(i for i, n in enumerate(names) if n == first)
        assert any(n != first for n in names[:last_of_first])

    def test_same_seed_traces_byte_identical(self):
        __, __, a, __ = run_workload(seed=7)
        __, __, b, __ = run_workload(seed=7)
        assert a.trace_lines() == b.trace_lines()
        assert len(a.trace) > 0

    def test_hooks_restored_after_run(self):
        server, __, __, __ = run_workload(seed=1)
        assert server.scheduler is None
        assert server.pool.yield_hook is None

    def test_empty_scheduler_reports_zero(self):
        server = make_server()
        report = WorkloadScheduler(server, seed=0).run()
        assert report["statements"] == 0

    def test_scheduler_runs_once(self):
        __, __, scheduler, __ = run_workload(seed=1)
        with pytest.raises(SchedulerDeadlockError):
            scheduler.run()
        with pytest.raises(SchedulerDeadlockError):
            scheduler.add_session("late", ["SELECT 1"])

    def test_duplicate_session_name_rejected(self):
        scheduler = WorkloadScheduler(make_server(), seed=0)
        scheduler.add_session("a", ["SELECT 1"])
        with pytest.raises(ValueError):
            scheduler.add_session("a", ["SELECT 1"])


class TestAdmission:
    def test_mpl_bounds_concurrent_statements(self):
        __, __, scheduler, report = run_workload(
            seed=3, n_sessions=6, multiprogramming_level=2
        )
        assert report["peak_admitted"] <= 2
        assert report["admission_waits"] > 0
        assert all(s.status == DONE for s in scheduler.sessions)
        assert report["statements"] == 6 * 12

    def test_wide_mpl_never_queues(self):
        __, __, __, report = run_workload(
            seed=3, n_sessions=3, multiprogramming_level=8
        )
        assert report["admission_waits"] == 0
        assert report["peak_admitted"] >= 2

    def test_adaptive_mpl_still_completes(self):
        __, __, scheduler, report = run_workload(
            seed=9, n_sessions=5, adaptive_mpl=True,
            multiprogramming_level=2,
        )
        assert all(s.status == DONE for s in scheduler.sessions)
        assert report["statements"] == 5 * 12


class TestGroupCommitUnderScheduler:
    def test_commits_batch_across_sessions(self):
        server, __, __, __ = run_workload(seed=5, n_sessions=4)
        coordinator = server.group_commit
        assert coordinator.committed >= 4 * 6
        # Batching happened: strictly fewer forces than commits.
        assert coordinator.batches < coordinator.committed
        snap = server.metrics.snapshot()
        assert snap["wal.group_commit.batch_size"]["max"] >= 2
        assert snap["txn.commit_latency_us"]["count"] >= 4 * 6

    def test_group_commit_disabled_forces_per_commit(self):
        server, __, __, __ = run_workload(
            seed=5, n_sessions=4,
            group_commit=GroupCommitConfig(enabled=False),
        )
        coordinator = server.group_commit
        assert coordinator.batches == coordinator.committed


class TestFailureModes:
    def test_statement_faults_absorbed(self):
        plan = FaultPlan(
            seed=11, rates=FaultRates(disk_read_error=0.05, io_retry_limit=0)
        )
        server = make_server(fault_plan=plan, initial_pool_pages=32)
        seed_table(server, rows=600)
        scheduler = WorkloadScheduler(server, seed=11)
        for k in range(3):
            scheduler.add_session("s%d" % k, mixed_statements(k))
        report = scheduler.run()
        assert all(s.status == DONE for s in scheduler.sessions)
        total = report["statements"] + report["statement_errors"]
        assert total == 3 * 12

    def test_fatal_error_aborts_siblings(self):
        server = make_server()
        seed_table(server)
        scheduler = WorkloadScheduler(server, seed=2)

        def bad_source(connection):
            yield "SELECT count(*) FROM t"
            raise RuntimeError("session logic bug")

        scheduler.add_session("bad", bad_source)
        scheduler.add_session("victim", mixed_statements(0, n=50))
        with pytest.raises(RuntimeError, match="session logic bug"):
            scheduler.run()
        statuses = {s.name: s.status for s in scheduler.sessions}
        assert statuses["bad"] == FAILED
        assert statuses["victim"] == ABORTED

    def test_pool_miss_yields_appear_in_trace(self):
        # A pool far smaller than the table forces misses mid-statement;
        # with a high switch rate some of them must hand the baton off.
        server = make_server(initial_pool_pages=16)
        seed_table(server, rows=1200)
        scheduler = WorkloadScheduler(server, seed=4, switch_rate=0.9)
        for k in range(3):
            scheduler.add_session("s%d" % k, mixed_statements(k, n=3))
        scheduler.run()
        assert any("yield:pool.miss" in line for line in scheduler.trace)


class TestSanitizerInvariants:
    def test_unadmitted_session_caught(self):
        from repro.analysis.sanitizers import SchedulerInvariantError

        server = make_server()
        scheduler = WorkloadScheduler(server, seed=0)
        session = scheduler.add_session("s", [])
        assert scheduler.sanitize
        with pytest.raises(SchedulerInvariantError, match="not admitted"):
            scheduler._assert_admitted(session)

    def test_queued_session_caught(self):
        from repro.analysis.sanitizers import SchedulerInvariantError

        server = make_server(multiprogramming_level=1)
        scheduler = WorkloadScheduler(server, seed=0)
        admitted = scheduler.add_session("a", [])
        queued = scheduler.add_session("b", [])
        admission = server.memory_governor.admission
        assert admission.request(admitted)
        assert not admission.request(queued)
        with pytest.raises(SchedulerInvariantError, match="queued"):
            scheduler._assert_admitted(queued)
        # The legitimately admitted session passes.
        scheduler._assert_admitted(admitted)

    def test_check_disabled_without_sanitize(self):
        server = Server(
            ServerConfig(start_buffer_governor=False), sanitize=False
        )
        scheduler = WorkloadScheduler(server, seed=0)
        session = scheduler.add_session("s", [])
        scheduler._assert_admitted(session)  # no-op, no raise

    def test_pin_check_unsafe_while_sibling_in_statement(self):
        server = make_server()
        scheduler = WorkloadScheduler(server, seed=0)
        a = scheduler.add_session("a", [])
        b = scheduler.add_session("b", [])
        scheduler._current = a
        server.scheduler = scheduler
        assert scheduler.pin_check_safe()
        b.in_statement = True
        assert not scheduler.pin_check_safe()
        assert not server.pin_checks_quiescent()
        b.in_statement = False
        assert scheduler.pin_check_safe()
