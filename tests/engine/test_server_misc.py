"""Engine-level tests: DTT deployment, options, sizes, load validation."""

import pytest

from repro import Server, ServerConfig
from repro.common import KiB, SimClock
from repro.common.errors import ExecutionError, SqlTypeError
from repro.storage import FlashDisk


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    return Server(ServerConfig(**kwargs))


class TestDttDeployment:
    def test_calibrate_export_install_roundtrip(self):
        """The paper's deployment flow: calibrate one representative
        device, ship the model to thousands of others."""
        clock = SimClock()
        representative = Server(
            ServerConfig(start_buffer_governor=False),
            clock=clock, disk=FlashDisk(clock, 131_072),
        )
        conn = representative.connect()
        conn.execute("CALIBRATE DATABASE")
        exported = representative.export_dtt_model()

        fleet_member = make_server()
        before = fleet_member.catalog.dtt_model.name
        installed = fleet_member.install_dtt_model(exported)
        assert before == "default-generic"
        assert installed.name == "calibrated"
        # The installed model drives this server's cost estimates: flash
        # is flat across band sizes.
        flat_a = fleet_member.catalog.dtt_model.cost_us("read", 4 * KiB, 1)
        flat_b = fleet_member.catalog.dtt_model.cost_us("read", 4 * KiB, 50_000)
        assert flat_a == pytest.approx(flat_b, rel=0.1)

    def test_installed_model_used_by_optimizer(self):
        server = make_server()
        exported = server.export_dtt_model()
        # Scale every cost by 100x and install: optimizer context changes.
        for entry in exported["curves"]:
            entry["curve"]["points"] = [
                [band, cost * 100] for band, cost in entry["curve"]["points"]
            ]
        server.install_dtt_model(exported)
        optimizer = server.make_optimizer()
        assert optimizer.cost_context.read_us(1) > 1000


class TestOptimizerQuotaOption:
    def test_quota_option_respected(self):
        server = make_server()
        conn = server.connect()
        for i in range(4):
            conn.execute("CREATE TABLE t%d (id INT PRIMARY KEY, n INT)" % i)
            server.load_table("t%d" % i, [(r, r % 8) for r in range(64)])
        sql = (
            "SELECT COUNT(*) FROM t0, t1, t2, t3 "
            "WHERE t0.n = t1.id AND t1.n = t2.id AND t2.n = t3.id"
        )
        conn.execute("SET OPTION optimizer_quota = 10")
        small = conn.execute(sql).plan_result.stats.nodes_visited
        conn.execute("SET OPTION optimizer_quota = 5000")
        large = conn.execute(sql).plan_result.stats.nodes_visited
        assert small <= 10 + 4  # quota plus the one-dive floor
        assert small < large  # the bigger budget explores more

    def test_bogus_quota_ignored(self):
        server = make_server()
        conn = server.connect()
        conn.execute("SET OPTION optimizer_quota = 'lots'")
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1)")
        assert conn.execute("SELECT COUNT(*) FROM t").rows == [(1,)]


class TestLoadTable:
    def test_arity_validation(self):
        server = make_server()
        server.connect().execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ExecutionError):
            server.load_table("t", [(1,)])

    def test_not_null_validation(self):
        server = make_server()
        server.connect().execute("CREATE TABLE t (a INT NOT NULL)")
        with pytest.raises(SqlTypeError):
            server.load_table("t", [(None,)])

    def test_type_coercion(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a DOUBLE)")
        server.load_table("t", [(3,)])  # int -> double
        assert conn.execute("SELECT a FROM t").rows == [(3.0,)]

    def test_builds_statistics(self):
        server = make_server()
        server.connect().execute("CREATE TABLE t (a INT)")
        server.load_table("t", [(i,) for i in range(100)])
        assert server.stats.histogram("t", 0) is not None


class TestDatabaseSize:
    def test_grows_with_data_and_indexes(self):
        server = make_server()
        conn = server.connect()
        empty = server.database_size_bytes()
        conn.execute("CREATE TABLE t (a INT PRIMARY KEY, pad VARCHAR(60))")
        server.load_table("t", [(i, "x" * 40) for i in range(5000)])
        loaded = server.database_size_bytes()
        assert loaded > empty
        conn.execute("CREATE INDEX extra ON t (pad)")
        assert server.database_size_bytes() > loaded


class TestResultHelpers:
    def test_iteration_and_len(self):
        server = make_server()
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INT)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        result = conn.execute("SELECT a FROM t")
        assert len(result) == 2
        assert sorted(result) == [(1,), (2,)]

    def test_explain_without_plan(self):
        from repro.engine import Result

        assert Result().explain() == "<no plan>"
