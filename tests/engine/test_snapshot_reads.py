"""Snapshot read path: readers never queue behind writers.

Row versions are keyed by commit LSN.  A read-only statement opens a
snapshot at the last committed LSN and resolves every row against it:
pending (uncommitted) foreign writes and writes committed after the
snapshot supply their before-image; the reader's own pending writes are
visible (read-your-own-writes).  Readers take no row locks, so a hot
writer never blocks them.
"""

from repro import Server, ServerConfig
from repro.engine import WorkloadScheduler
from repro.engine.scheduler import DONE, YIELD_STATEMENT


def make_server(**kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    return Server(ServerConfig(**kwargs))


def seed_table(server, rows=10, v=0):
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, v) for i in range(rows)])
    return connection


def value(connection, row_id=0):
    return connection.execute(
        "SELECT v FROM t WHERE id = %d" % row_id
    ).rows[0][0]


class TestStatementSnapshots:
    def test_uncommitted_write_invisible_to_other_connections(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 99 WHERE id = 0")
        assert value(reader) == 0          # snapshot: before-image
        assert value(writer) == 99         # read-your-own-writes
        writer.commit()
        assert value(reader) == 99

    def test_rollback_restores_visibility(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 99 WHERE id = 0")
        writer.rollback()
        assert value(reader) == 0
        assert value(writer) == 0

    def test_uncommitted_delete_still_visible_to_others(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("DELETE FROM t WHERE id = 3")
        count = reader.execute("SELECT count(*) FROM t").rows[0][0]
        assert count == 10
        assert writer.execute("SELECT count(*) FROM t").rows[0][0] == 9
        writer.commit()
        assert reader.execute("SELECT count(*) FROM t").rows[0][0] == 9

    def test_uncommitted_insert_invisible_to_others(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("INSERT INTO t VALUES (100, 7)")
        assert reader.execute("SELECT count(*) FROM t").rows[0][0] == 10
        writer.commit()
        assert reader.execute("SELECT count(*) FROM t").rows[0][0] == 11

    def test_reader_does_not_block_and_takes_no_row_locks(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 99 WHERE id = 0")
        before = server.lock_manager.conflicts
        # Fail-fast mode off-scheduler: a lock acquisition would raise.
        assert value(reader) == 0
        assert server.lock_manager.conflicts == before
        writer.commit()

    def test_index_scan_respects_the_snapshot(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("UPDATE t SET id = 999 WHERE id = 5")
        # The index already contains the 999 entry, but the versioned
        # row image does not satisfy the bounds at the snapshot.
        assert reader.execute("SELECT id FROM t WHERE id = 999").rows == []
        writer.rollback()

    def test_fail_fast_baseline_when_snapshots_disabled(self):
        server = make_server(snapshot_reads=False)
        writer = seed_table(server)
        reader = server.connect()
        writer.begin()
        writer.execute("UPDATE t SET v = 99 WHERE id = 0")
        # Without snapshots the reader sees the dirty heap row.
        assert value(reader) == 99
        writer.commit()

    def test_versions_purged_after_snapshots_close(self):
        server = make_server()
        writer = seed_table(server)
        writer.begin()
        writer.execute("UPDATE t SET v = 1 WHERE id = 0")
        writer.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert server.versions.rows_versioned() > 0
        writer.commit()
        # No snapshot is open: commit purges every chain.
        assert server.versions.rows_versioned() == 0


class TestCursorSnapshots:
    def test_cursor_sees_its_opening_snapshot_throughout(self):
        server = make_server()
        writer = seed_table(server, rows=50)
        reader = server.connect()
        cursor = reader.open_cursor("SELECT id, v FROM t")
        first = cursor.fetchmany(5)
        writer.execute("UPDATE t SET v = 77 WHERE id = 40")  # autocommit
        rest = cursor.fetchall()
        cursor.close()
        rows = dict((r[0], r[1]) for r in first + rest)
        # The post-open commit is beyond the cursor's snapshot horizon.
        assert rows[40] == 0
        assert value(writer, 40) == 77

    def test_cursor_close_releases_the_snapshot(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        cursor = reader.open_cursor("SELECT id, v FROM t")
        cursor.fetchmany(2)
        writer.execute("UPDATE t SET v = 5 WHERE id = 9")
        assert server.versions.rows_versioned() > 0
        cursor.close()
        assert server.versions.rows_versioned() == 0


def transfer_statements(n=4):
    """Move 10 from row 0 to row 1, n times, always locking 0 first."""
    def source(connection):
        for __ in range(n):
            yield "BEGIN"
            yield "UPDATE t SET v = v - 10 WHERE id = 0"
            yield "UPDATE t SET v = v + 10 WHERE id = 1"
            yield "COMMIT"
    return source


def sum_reader(results, holder, n=6):
    def read_sums(conn):
        for __ in range(n):
            results.append(
                conn.execute("SELECT sum(v) FROM t").rows[0][0]
            )
            holder[0].yield_point(YIELD_STATEMENT, always=True)
    read_sums.__name__ = "read-sums"
    return [read_sums]


class TestSnapshotConsistencyUnderScheduler:
    def test_readers_only_ever_see_consistent_transfer_states(self):
        server = make_server()
        connection = seed_table(server, rows=2, v=100)
        scheduler = WorkloadScheduler(server, seed=9, switch_rate=0.8)
        holder = [scheduler]
        sums = []
        scheduler.add_session("w0", transfer_statements())
        scheduler.add_session("w1", transfer_statements())
        scheduler.add_session("r0", sum_reader(sums, holder))
        scheduler.add_session("r1", sum_reader(sums, holder))
        report = scheduler.run()
        assert report["statement_errors"] == 0
        assert all(s.status == DONE for s in scheduler.sessions)
        assert sums, "readers never ran"
        # Every snapshot saw either all of a transfer or none of it.
        assert set(sums) == {200}
        assert value(connection, 0) == 100 - 8 * 10
        assert value(connection, 1) == 100 + 8 * 10
        # All snapshots closed: nothing left versioned.
        assert server.versions.rows_versioned() == 0

    def test_scheduled_readers_never_park_on_locks(self):
        server = make_server()
        seed_table(server, rows=2, v=100)
        scheduler = WorkloadScheduler(server, seed=9, switch_rate=0.8)
        holder = [scheduler]
        sums = []
        scheduler.add_session("w0", transfer_statements())
        scheduler.add_session("r0", sum_reader(sums, holder))
        scheduler.run()
        waits = [
            line for line in scheduler.trace_lines().splitlines()
            if "wait:lock" in line and "r0" in line
        ]
        assert waits == []
        assert set(sums) == {200}


class TestIndexScanSnapshotFallback:
    """Index entries are mutated in place at DML time, so an index scan
    whose snapshot predates the index's last DML stamp cannot trust the
    B-tree: entries removed after the snapshot are simply gone.  The
    scan must fall back to the versioned heap path."""

    def test_uncommitted_delete_stays_visible_via_fallback(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        before = server.metrics.counter("exec.adaptive_fallbacks").value
        writer.begin()
        writer.execute("DELETE FROM t WHERE id = 5")
        # The pk_t entry for 5 is already gone; only the heap fallback
        # can resolve the before-image.
        assert reader.execute("SELECT v FROM t WHERE id = 5").rows == [(0,)]
        after = server.metrics.counter("exec.adaptive_fallbacks").value
        assert after == before + 1
        writer.rollback()
        assert value(reader, 5) == 0

    def test_fresh_snapshot_after_commit_trusts_the_btree(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        writer.execute("DELETE FROM t WHERE id = 5")  # autocommit
        before = server.metrics.counter("exec.adaptive_fallbacks").value
        # Snapshot horizon >= index stamp: the exact index path is safe.
        assert reader.execute("SELECT v FROM t WHERE id = 5").rows == []
        after = server.metrics.counter("exec.adaptive_fallbacks").value
        assert after == before

    def test_cursor_spanning_a_committed_delete_sees_the_row(self):
        server = make_server(initial_pool_pages=64)
        writer = server.connect()
        writer.execute("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
        server.load_table("big", [(i, i) for i in range(100)])
        reader = server.connect()
        # Narrow range: the optimizer picks the pk index scan.
        cursor = reader.open_cursor("SELECT id FROM big WHERE id >= 95")
        first = cursor.fetchmany(2)
        writer.execute("DELETE FROM big WHERE id = 99")  # autocommit
        rest = cursor.fetchall()
        cursor.close()
        assert [r[0] for r in first + rest] == [95, 96, 97, 98, 99]
        fresh = reader.execute("SELECT id FROM big WHERE id >= 95").rows
        assert [r[0] for r in fresh] == [95, 96, 97, 98]


class TestNarrowSnapshotFallback:
    """Delete stamps are kept per key, so DML on keys outside a scan's
    bounds no longer forces the heap fallback (the previous whole-index
    stamp penalized every concurrent index scan on the table)."""

    def test_unrelated_key_delete_keeps_the_index_path(self):
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        counter = server.metrics.counter("exec.adaptive_fallbacks")
        writer.begin()
        writer.execute("DELETE FROM t WHERE id = 5")
        before = counter.value
        # The scan's bounds (id = 7) miss the stamped key (5,): the
        # B-tree is still exact for this snapshot.
        assert reader.execute("SELECT v FROM t WHERE id = 7").rows == [(0,)]
        assert counter.value == before
        # ...while the stamped key itself still needs the fallback.
        assert reader.execute("SELECT v FROM t WHERE id = 5").rows == [(0,)]
        assert counter.value == before + 1
        writer.rollback()

    def test_unrelated_range_keeps_the_index_path(self):
        server = make_server(initial_pool_pages=64)
        writer = server.connect()
        writer.execute("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
        server.load_table("big", [(i, i) for i in range(100)])
        reader = server.connect()
        counter = server.metrics.counter("exec.adaptive_fallbacks")
        writer.begin()
        writer.execute("DELETE FROM big WHERE id = 10")
        before = counter.value
        rows = reader.execute("SELECT id FROM big WHERE id >= 95").rows
        assert [r[0] for r in rows] == [95, 96, 97, 98, 99]
        assert counter.value == before
        writer.rollback()

    def test_insert_after_snapshot_never_falls_back(self):
        # Inserted-after entries are filtered by the visibility re-check
        # on the trusted path; only removals can blind an index scan.
        server = make_server()
        writer = seed_table(server)
        reader = server.connect()
        counter = server.metrics.counter("exec.adaptive_fallbacks")
        writer.begin()
        writer.execute("INSERT INTO t VALUES (100, 1)")
        before = counter.value
        assert reader.execute("SELECT v FROM t WHERE id = 100").rows == []
        assert counter.value == before
        writer.commit()
        assert reader.execute("SELECT v FROM t WHERE id = 100").rows == [(1,)]

    def test_rebuild_resets_the_per_key_state(self):
        server = make_server()
        writer = seed_table(server)
        writer.execute("DELETE FROM t WHERE id = 5")  # autocommit
        index = server.catalog.index("pk_t")
        assert index.delete_stamps  # stamped by the delete
        writer.execute("REORGANIZE TABLE t")
        # The rebuilt tree reflects the committed horizon exactly: stamps
        # are gone and the rebuild horizon gates older snapshots instead.
        assert index.delete_stamps == {}
        assert index.rebuild_lsn == server.versions.last_commit_lsn
        assert index.always_fallback is False
        reader = server.connect()
        counter = server.metrics.counter("exec.adaptive_fallbacks")
        before = counter.value
        assert reader.execute("SELECT v FROM t WHERE id = 5").rows == []
        assert counter.value == before
