"""Engine-level tests for the adaptive execution behaviours (Section 4.3)."""

import pytest

from repro import Server, ServerConfig
from repro.buffer import GovernorConfig
from repro.common import MiB


def make_server(pool_pages=2048, mpl=4):
    config = ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=pool_pages,
        multiprogramming_level=mpl,
        governor=GovernorConfig(upper_bound_bytes=64 * MiB),
    )
    return Server(config)


def load_join_tables(conn, n_orders=3000, n_customers=200):
    conn.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
    )
    conn.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT, amount DOUBLE)"
    )
    conn.server.load_table(
        "customer",
        [(i, "region%d" % (i % 5)) for i in range(n_customers)],
    )
    conn.server.load_table(
        "orders",
        [(i, i % n_customers, float(i % 97)) for i in range(n_orders)],
    )


class TestHashJoinAdaptivity:
    def test_alternate_switch_on_small_build(self):
        """Optimizer expects many build rows (density of a parameterized
        predicate over a 3-value column); reality delivers one; the hash
        join switches to its index-NL alternate and never scans the probe
        side."""
        server = make_server()
        conn = server.connect()
        conn.execute(
            "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
        )
        conn.execute("CREATE TABLE orders (id INT, cust_id INT, amount INT)")
        server.load_table(
            "customer", [(i, "region%d" % (i % 5)) for i in range(20000)]
        )
        rows = [(i, i % 20000, i % 3) for i in range(50000)]
        rows.append((50001, 7, 999))  # the needle: one row with amount 999
        server.load_table("orders", rows)
        result = conn.execute(
            "SELECT c.region FROM customer c JOIN orders o "
            "ON o.cust_id = c.id WHERE o.amount = ?",
            params=[999],
        )
        assert result.notes.get("hash_join_switched") == 1
        assert result.rows == [("region2",)]  # customer 7 -> region 7 % 5
        # The plan really was a hash join with the alternate attached.
        assert "alt=indexNL" in result.explain()

    def test_no_switch_when_estimate_was_right(self):
        server = make_server()
        conn = server.connect()
        conn.execute(
            "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
        )
        conn.execute("CREATE TABLE orders (id INT, cust_id INT, amount INT)")
        server.load_table(
            "customer", [(i, "region%d" % (i % 5)) for i in range(20000)]
        )
        server.load_table(
            "orders", [(i, i % 20000, i % 3) for i in range(50000)]
        )
        result = conn.execute(
            "SELECT COUNT(*) FROM customer c JOIN orders o "
            "ON o.cust_id = c.id WHERE o.amount = ?",
            params=[1],
        )
        assert "hash_join_switched" not in result.notes
        assert result.rows[0][0] > 10_000

    def test_partition_eviction_under_memory_pressure(self):
        """A build input far beyond the soft limit evicts partitions but
        still joins correctly."""
        server = make_server(pool_pages=256, mpl=8)  # soft limit: 32 pages
        conn = server.connect()
        load_join_tables(conn, n_orders=8000, n_customers=50)
        result = conn.execute(
            "SELECT COUNT(*) FROM customer c JOIN orders o ON o.cust_id = c.id"
        )
        assert result.rows == [(8000,)]

    def test_spilled_join_charges_temp_io(self):
        server = make_server(pool_pages=256, mpl=8)
        conn = server.connect()
        load_join_tables(conn, n_orders=8000, n_customers=50)
        writes_before = server.disk.writes
        conn.execute(
            "SELECT COUNT(*) FROM customer c JOIN orders o ON o.cust_id = c.id"
        )
        assert server.disk.writes > writes_before


class TestGroupByFallback:
    def test_low_memory_fallback_correctness(self):
        """Millions of groups under a tiny quota: the indexed-temp-table
        fallback must produce exactly the hash-aggregation answer."""
        big = make_server(pool_pages=4096, mpl=2)
        small = make_server(pool_pages=128, mpl=16)  # soft limit: 8 pages
        answers = []
        for server in (big, small):
            conn = server.connect()
            conn.execute("CREATE TABLE t (k INT, v DOUBLE)")
            server.load_table(
                "t", [(i % 600, float(i)) for i in range(3000)]
            )
            result = conn.execute(
                "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k"
            )
            answers.append(result.rows)
            if server is small:
                assert result.notes.get("group_by_fallback", 0) >= 1
        assert answers[0] == answers[1]

    def test_no_fallback_with_ample_memory(self):
        server = make_server(pool_pages=4096, mpl=2)
        conn = server.connect()
        conn.execute("CREATE TABLE t (k INT, v DOUBLE)")
        server.load_table("t", [(i % 10, float(i)) for i in range(500)])
        result = conn.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert "group_by_fallback" not in result.notes


class TestSortSpill:
    def test_external_sort_matches_in_memory(self):
        big = make_server(pool_pages=4096, mpl=2)
        small = make_server(pool_pages=128, mpl=16)
        answers = []
        for server in (big, small):
            conn = server.connect()
            conn.execute("CREATE TABLE t (k INT, v VARCHAR(10))")
            server.load_table(
                "t", [((i * 7919) % 5000, "v%d" % i) for i in range(5000)]
            )
            result = conn.execute("SELECT k FROM t ORDER BY k")
            answers.append(result.rows)
        assert answers[0] == answers[1]
        assert answers[0] == sorted(answers[0])


class TestMemoryGovernorIntegration:
    def test_concurrent_tasks_shrink_hard_limit(self):
        server = make_server()
        governor = server.memory_governor
        t1 = governor.begin_task()
        limit_alone = t1.hard_limit_pages
        t2 = governor.begin_task()
        assert t1.hard_limit_pages < limit_alone
        governor.end_task(t1)
        governor.end_task(t2)

    def test_statement_killed_past_hard_limit(self):
        """A statement whose working set exceeds the hard limit is
        terminated with an error (paper: hard limit semantics)."""
        from repro.common.errors import MemoryQuotaExceededError

        server = make_server(pool_pages=64, mpl=1)
        server.memory_governor.max_pool_pages = 8  # pathological ceiling
        conn = server.connect()
        conn.execute("CREATE TABLE t (k INT, v VARCHAR(10))")
        server.load_table("t", [(i, "v%d" % i) for i in range(5000)])
        with pytest.raises(MemoryQuotaExceededError):
            conn.execute("SELECT DISTINCT k FROM t ORDER BY k")


class TestRecursiveUnionAdaptivity:
    def test_arm_replanned_each_iteration(self):
        server = make_server()
        conn = server.connect()
        result = conn.execute(
            "WITH RECURSIVE seq(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM seq WHERE n < 8"
            ") SELECT COUNT(*) FROM seq"
        )
        assert result.rows == [(8,)]
        assert result.notes["recursive_iterations"] == 8
