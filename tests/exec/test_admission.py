"""Unit tests for the MPL admission queue."""

from repro.exec import AdmissionQueue
from repro.profiling import MetricsRegistry


class StubGovernor:
    def __init__(self, mpl):
        self.multiprogramming_level = mpl


def make_queue(mpl=2, metrics=None):
    return AdmissionQueue(StubGovernor(mpl), metrics=metrics)


def test_admits_up_to_capacity():
    queue = make_queue(mpl=2)
    assert queue.request("a")
    assert queue.request("b")
    assert not queue.request("c")
    assert queue.admitted("a") and queue.admitted("b")
    assert queue.queued("c")
    assert queue.queue_depth() == 1


def test_request_is_idempotent_for_admitted():
    queue = make_queue(mpl=1)
    assert queue.request("a")
    assert queue.request("a")
    assert queue.total_admissions == 1


def test_queued_requester_does_not_requeue():
    queue = make_queue(mpl=1)
    queue.request("a")
    assert not queue.request("b")
    assert not queue.request("b")
    assert queue.queue_depth() == 1
    assert queue.total_waits == 1


def test_release_promotes_fifo():
    queue = make_queue(mpl=1)
    queue.request("a")
    queue.request("b")
    queue.request("c")
    promoted = queue.release("a")
    assert promoted == ["b"]
    assert queue.admitted("b")
    assert queue.queued("c")
    assert queue.release("b") == ["c"]


def test_no_queue_jumping_even_with_free_slot():
    queue = make_queue(mpl=2)
    queue.request("a")
    queue.request("b")
    queue.request("c")  # queued
    queue.release("a")  # c promoted into the freed slot
    assert queue.admitted("c")
    queue.request("d")  # both slots held (b, c): d queues
    queue.request("e")
    queue.release("b")
    # d promoted in arrival order; e still waits; a newcomer queues
    # behind e even though it arrived while a slot was being freed.
    assert queue.admitted("d")
    assert queue.queued("e")
    assert not queue.request("f")
    queue.release("c")
    assert queue.admitted("e")
    assert queue.queued("f")


def test_capacity_is_read_live():
    governor = StubGovernor(1)
    queue = AdmissionQueue(governor)
    queue.request("a")
    queue.request("b")
    assert queue.queued("b")
    governor.multiprogramming_level = 3  # MPL adaptation widens the gate
    assert queue.promote() == ["b"]
    assert queue.capacity() == 3


def test_capacity_shrink_drains_by_attrition():
    governor = StubGovernor(2)
    queue = AdmissionQueue(governor)
    queue.request("a")
    queue.request("b")
    governor.multiprogramming_level = 1
    queue.request("c")
    assert queue.queued("c")
    assert queue.release("a") == []  # still over the narrowed capacity? no:
    # one admitted ("b") at capacity 1 -> no promotion until b leaves.
    assert queue.queued("c")
    assert queue.release("b") == ["c"]


def test_withdraw_forgets_everywhere():
    queue = make_queue(mpl=1)
    queue.request("a")
    queue.request("b")
    queue.withdraw("b")
    assert not queue.queued("b")
    queue.withdraw("a")
    assert not queue.admitted("a")
    assert queue.request("c")


def test_counters_and_probes():
    metrics = MetricsRegistry()
    queue = make_queue(mpl=1, metrics=metrics)
    queue.request("a")
    queue.request("b")
    snap = metrics.snapshot()
    assert snap["memgov.admissions"] == 1
    assert snap["memgov.admission_waits"] == 1
    assert snap["memgov.admitted_sessions"] == 1
    assert snap["memgov.admission_queue_depth"] == 1
    assert queue.peak_admitted == 1
