"""Edge-case tests for aggregation, distinct, and sorting operators."""

import pytest

from repro import Server, ServerConfig


@pytest.fixture
def conn():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=1024))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, k INT, v DOUBLE, s VARCHAR(10))"
    )
    return connection


class TestAggregateEdges:
    def test_aggregates_over_all_nulls(self, conn):
        conn.execute("INSERT INTO t VALUES (1, NULL, NULL, NULL), "
                     "(2, NULL, NULL, NULL)")
        result = conn.execute(
            "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t"
        )
        assert result.rows == [(2, 0, None, None, None, None)]

    def test_group_key_null_forms_its_own_group(self, conn):
        conn.execute("INSERT INTO t VALUES (1, NULL, 1.0, 'a'), "
                     "(2, NULL, 2.0, 'b'), (3, 5, 3.0, 'c')")
        result = conn.execute(
            "SELECT k, COUNT(*) FROM t GROUP BY k"
        )
        assert sorted(result.rows, key=repr) == sorted(
            [(None, 2), (5, 1)], key=repr
        )

    def test_min_max_on_strings(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 0.0, 'pear'), "
                     "(2, 1, 0.0, 'apple'), (3, 1, 0.0, 'plum')")
        result = conn.execute("SELECT MIN(s), MAX(s) FROM t")
        assert result.rows == [("apple", "plum")]

    def test_sum_of_mixed_sign(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, -5.5, 'x'), "
                     "(2, 1, 5.5, 'y')")
        assert conn.execute("SELECT SUM(v) FROM t").rows == [(0.0,)]

    def test_count_distinct_with_nulls(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 0.0, 'a'), "
                     "(2, 1, 0.0, 'a'), (3, 2, 0.0, NULL), (4, 2, 0.0, 'b')")
        result = conn.execute("SELECT COUNT(DISTINCT s) FROM t")
        assert result.rows == [(2,)]  # NULL excluded

    def test_avg_distinct(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 10.0, 'a'), "
                     "(2, 1, 10.0, 'a'), (3, 1, 20.0, 'b')")
        result = conn.execute("SELECT AVG(DISTINCT v) FROM t")
        assert result.rows == [(15.0,)]

    def test_multiple_aggregates_same_column(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 2.0, 'a'), "
                     "(2, 1, 4.0, 'b')")
        result = conn.execute(
            "SELECT SUM(v), SUM(v) + AVG(v), MAX(v) - MIN(v) FROM t"
        )
        assert result.rows == [(6.0, 9.0, 2.0)]

    def test_group_by_two_keys(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 1.0, 'a'), "
                     "(2, 1, 2.0, 'a'), (3, 1, 3.0, 'b'), (4, 2, 4.0, 'a')")
        result = conn.execute(
            "SELECT k, s, COUNT(*) FROM t GROUP BY k, s ORDER BY k, s"
        )
        assert result.rows == [(1, "a", 2), (1, "b", 1), (2, "a", 1)]


class TestDistinctAndOrder:
    def test_distinct_with_nulls(self, conn):
        conn.execute("INSERT INTO t VALUES (1, NULL, 0.0, 'x'), "
                     "(2, NULL, 0.0, 'x'), (3, 1, 0.0, 'x')")
        result = conn.execute("SELECT DISTINCT k FROM t")
        assert len(result) == 2

    def test_order_by_multiple_directions(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 2, 5.0, 'a'), "
                     "(2, 1, 5.0, 'b'), (3, 2, 1.0, 'c'), (4, 1, 9.0, 'd')")
        result = conn.execute(
            "SELECT k, v FROM t ORDER BY k ASC, v DESC"
        )
        assert result.rows == [(1, 9.0), (1, 5.0), (2, 5.0), (2, 1.0)]

    def test_limit_zero(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 1.0, 'a')")
        assert conn.execute("SELECT id FROM t LIMIT 0").rows == []

    def test_limit_beyond_rows(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 1, 1.0, 'a')")
        assert len(conn.execute("SELECT id FROM t LIMIT 99")) == 1

    def test_order_by_expression(self, conn):
        conn.execute("INSERT INTO t VALUES (1, 3, 1.0, 'a'), "
                     "(2, 1, 10.0, 'b')")
        result = conn.execute("SELECT id FROM t ORDER BY k * v")
        assert result.rows == [(1,), (2,)]


class TestEmptyInputs:
    def test_everything_over_empty_table(self, conn):
        assert conn.execute("SELECT * FROM t").rows == []
        assert conn.execute("SELECT COUNT(*) FROM t").rows == [(0,)]
        assert conn.execute("SELECT k FROM t GROUP BY k").rows == []
        assert conn.execute("SELECT DISTINCT k FROM t").rows == []
        assert conn.execute("SELECT k FROM t ORDER BY k").rows == []

    def test_join_with_empty_side(self, conn):
        conn.execute("CREATE TABLE u (id INT PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1, 1, 1.0, 'a')")
        assert conn.execute(
            "SELECT COUNT(*) FROM t JOIN u ON t.k = u.id"
        ).rows == [(0,)]
        assert conn.execute(
            "SELECT t.id, u.id FROM t LEFT JOIN u ON t.k = u.id"
        ).rows == [(1, None)]
