"""Batch-execution edge cases.

The batch engine's contract is row equivalence: vectorization changes
per-row CPU accounting, never row values, row order, or error outcomes.
These tests pin the awkward corners — empty batches, spills straddling a
batch boundary, statement aborts mid-batch, and snapshot resolution
through the row shim — by running the same statements in both modes.
"""

import pytest

from repro import Server, ServerConfig
from repro.common.errors import ExecutionError, SpillWriteError
from repro.exec.batch import (
    Batch,
    BatchBuilder,
    batches_to_rows,
    rows_to_batches,
)
from repro.faults import FaultPlan, FaultRates


def make_server(batch=True, **kwargs):
    kwargs.setdefault("start_buffer_governor", False)
    kwargs.setdefault("initial_pool_pages", 512)
    return Server(ServerConfig(batch_execution=batch, **kwargs))


def both_modes(statements, query, **kwargs):
    """Run the setup + query in each mode; returns (row rows, batch rows)."""
    results = []
    for batch in (False, True):
        server = make_server(batch=batch, **kwargs)
        conn = server.connect()
        for sql, rows in statements:
            if rows is None:
                conn.execute(sql)
            else:
                server.load_table(sql, rows)
        results.append(conn.execute(query).rows)
    return results[0], results[1]


class TestBatchUnit:
    def test_empty_tuple_rows_round_trip(self):
        batch = Batch.from_tuples([(), (), ()], width=0)
        assert batch.count == 3
        assert list(batch.rows()) == [(), (), ()]

    def test_take_empty_mask_keeps_layout(self):
        batch = Batch.from_envs([{0: (1, 2)}, {0: (3, 4)}])
        empty = batch.take([False, False])
        assert empty.count == 0
        assert empty.layout == batch.layout
        assert list(empty.rows()) == []

    def test_slice_past_the_end_clamps(self):
        batch = Batch.from_tuples([(1,), (2,)], width=1)
        assert list(batch.slice(0, 10).rows()) == [(1,), (2,)]
        assert batch.slice(2, 10).count == 0

    def test_column_missing_key_is_none(self):
        batch = Batch.from_envs([{0: (1,)}])
        assert batch.column(7, 0) is None

    def test_column_index_past_width_raises_like_the_row_path(self):
        batch = Batch.from_envs([{0: (1,), 1: (2, 3)}])
        with pytest.raises(IndexError):
            batch.column(0, 1)

    def test_builder_flushes_on_shape_change(self):
        builder = BatchBuilder(batch_rows=10)
        first = builder.add({0: (1,)})
        assert first is None
        flushed = builder.add({0: (1,), 1: (2,)})  # new layout signature
        assert flushed is not None and flushed.count == 1
        tail = builder.finish()
        assert tail is not None and tail.count == 1

    def test_builder_single_row_batches_drop_nothing(self):
        rows = [{0: (i,)} for i in range(5)]
        out = list(batches_to_rows(rows_to_batches(iter(rows), 1)))
        assert out == rows

    def test_builder_finish_empty_is_none(self):
        assert BatchBuilder().finish() is None

    def test_mixed_shapes_round_trip_in_order(self):
        rows = [{0: (1,)}, {0: (2,)}, (3, 4), (5, 6), {1: (7, 8)}]
        out = list(batches_to_rows(rows_to_batches(iter(rows), 3)))
        assert out == rows


class TestEmptyBatches:
    SETUP = [
        ("CREATE TABLE t (id INT PRIMARY KEY, g INT, v INT)", None),
        ("t", [(i, i % 7, i * 3) for i in range(400)]),
    ]

    @pytest.mark.parametrize("query", [
        "SELECT id FROM t WHERE v < 0",
        "SELECT g, COUNT(*) FROM t WHERE v < 0 GROUP BY g",
        "SELECT SUM(v) FROM t WHERE v < 0",
        "SELECT a.id FROM t a JOIN t b ON a.id = b.v WHERE b.v < 0",
        "SELECT DISTINCT g FROM t WHERE id > 10000",
        "SELECT id FROM t WHERE v < 0 ORDER BY id LIMIT 5",
    ])
    def test_zero_row_results_agree(self, query):
        row_rows, batch_rows = both_modes(self.SETUP, query)
        assert batch_rows == row_rows

    def test_aggregate_over_empty_input_yields_its_null_row(self):
        row_rows, batch_rows = both_modes(
            self.SETUP, "SELECT COUNT(*), SUM(v) FROM t WHERE v < 0"
        )
        assert batch_rows == row_rows == [(0, None)]


class TestSpillStraddle:
    """Work memory runs out mid-batch: the spill must land between two
    rows of one batch without losing or duplicating either side."""

    SETUP = [
        ("CREATE TABLE r (id INT PRIMARY KEY, b INT)", None),
        ("r", [(i, i % 100) for i in range(900)]),
        ("CREATE TABLE s (id INT PRIMARY KEY, b INT, c INT)", None),
        ("s", [(i, i % 100, i % 50) for i in range(700)]),
    ]
    #: ~2-page soft limit (128 pages / 64 slots): hash builds larger
    #: than one batch must spill partway through a batch.
    TIGHT = dict(initial_pool_pages=128, multiprogramming_level=64)

    def test_join_spilling_mid_batch_matches_row_mode(self):
        query = (
            "SELECT r.id, s.id FROM r JOIN s ON r.b = s.b "
            "ORDER BY r.id, s.id"
        )
        row_rows, batch_rows = both_modes(self.SETUP, query, **self.TIGHT)
        assert batch_rows == row_rows
        assert len(batch_rows) == 700 * 9  # every s row meets 9 r rows

    def test_group_by_fallback_mid_batch_matches_row_mode(self):
        query = (
            "SELECT b, COUNT(*), SUM(id) FROM r GROUP BY b ORDER BY b"
        )
        row_rows, batch_rows = both_modes(self.SETUP, query, **self.TIGHT)
        assert batch_rows == row_rows

    def test_sort_spilling_mid_batch_matches_row_mode(self):
        query = "SELECT id, b FROM r ORDER BY b, id"
        row_rows, batch_rows = both_modes(self.SETUP, query, **self.TIGHT)
        assert batch_rows == row_rows

    def test_batch_mode_actually_spilled(self):
        server = make_server(batch=True, **self.TIGHT)
        conn = server.connect()
        for sql, rows in self.SETUP:
            if rows is None:
                conn.execute(sql)
            else:
                server.load_table(sql, rows)
        conn.execute(
            "SELECT r.id, s.id FROM r JOIN s ON r.b = s.b "
            "ORDER BY r.id, s.id"
        )
        assert server.metrics.snapshot()["exec.spill_events"] >= 1


def quiet_rates(**overrides):
    rates = FaultRates(
        disk_read_error=0.0,
        disk_write_error=0.0,
        disk_latency=0.0,
        working_set_outage=0.0,
        spill_write_error=0.0,
    )
    for name, value in overrides.items():
        setattr(rates, name, value)
    return rates


class TestMidBatchAbort:
    """A statement dying partway through a batch must release its quota
    and leave the server healthy, exactly like a row-mode abort."""

    def loaded(self, plan=None, **kwargs):
        server = make_server(batch=True, fault_plan=plan, **kwargs)
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.load_table("t", [(i, (i * 37) % 1000) for i in range(3000)])
        return server, conn

    def test_expression_error_mid_batch_aborts_cleanly(self):
        server, conn = self.loaded()
        # Row id=500 divides by zero partway through a 256-row batch.
        with pytest.raises(ExecutionError):
            conn.execute("SELECT v / (id - 500) FROM t")
        assert server.memory_governor.total_used_pages() == 0
        assert conn.execute("SELECT COUNT(*) FROM t").rows == [(3000,)]

    def test_spill_fault_mid_batch_aborts_cleanly(self):
        plan = FaultPlan(21, quiet_rates(spill_write_error=1.0))
        server, conn = self.loaded(
            plan=plan, initial_pool_pages=128, multiprogramming_level=16
        )
        with pytest.raises(SpillWriteError):
            conn.execute("SELECT id, v FROM t ORDER BY v, id")
        assert plan.statement_aborts == 1
        assert server.memory_governor.total_used_pages() == 0
        # Healed, the same statement completes in batch mode.
        plan.rates.spill_write_error = 0.0
        result = conn.execute("SELECT id, v FROM t ORDER BY v, id")
        assert len(result.rows) == 3000


class TestSnapshotThroughShim:
    """Snapshot-LSN row resolution stays correct in batch mode: the scan
    operators resolve versions per row, and the index-scan fallback (an
    unmigrated operator behind the row shim) still engages."""

    def seeded(self):
        server = make_server(batch=True)
        writer = server.connect()
        writer.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.load_table("t", [(i, 0) for i in range(10)])
        return server, writer, server.connect()

    def test_uncommitted_write_invisible_in_batch_mode(self):
        server, writer, reader = self.seeded()
        writer.begin()
        writer.execute("UPDATE t SET v = 99 WHERE id = 0")
        assert reader.execute(
            "SELECT v FROM t WHERE id = 0"
        ).rows == [(0,)]
        assert writer.execute(
            "SELECT v FROM t WHERE id = 0"
        ).rows == [(99,)]
        writer.commit()
        assert reader.execute(
            "SELECT v FROM t WHERE id = 0"
        ).rows == [(99,)]

    def test_index_fallback_resolves_through_the_shim(self):
        server, writer, reader = self.seeded()
        before = server.metrics.counter("exec.adaptive_fallbacks").value
        writer.begin()
        writer.execute("DELETE FROM t WHERE id = 5")
        # The pk entry is gone; only the versioned-heap fallback can
        # resolve the before-image — through the IndexScan row shim.
        assert reader.execute(
            "SELECT v FROM t WHERE id = 5"
        ).rows == [(0,)]
        after = server.metrics.counter("exec.adaptive_fallbacks").value
        assert after == before + 1
        writer.rollback()


class TestExplainAnalyzeBatches:
    SETUP = [
        ("CREATE TABLE t (id INT PRIMARY KEY, g INT)", None),
        ("t", [(i, i % 5) for i in range(600)]),
    ]
    QUERY = "SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g"

    def run_one(self, batch):
        server = make_server(batch=batch)
        conn = server.connect()
        for sql, rows in self.SETUP:
            if rows is None:
                conn.execute(sql)
            else:
                server.load_table(sql, rows)
        return conn.execute(self.QUERY).explain(analyze=True)

    def test_batch_mode_reports_batches_per_operator(self):
        text = self.run_one(batch=True)
        assert "batches=" in text
        assert "rows_per_batch=" in text

    def test_row_mode_rendering_is_unchanged(self):
        text = self.run_one(batch=False)
        assert "batches=" not in text
