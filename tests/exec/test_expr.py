"""Unit tests for expression evaluation (three-valued logic, LIKE, etc.)."""

import pytest

from repro.common.errors import ExecutionError
from repro.exec import evaluate, evaluate_predicate
from repro.exec.expr import like_match
from repro.sql import ast
from repro.sql.binder import GROUP_ENV, GroupRef


def lit(value):
    return ast.Literal(value)


def col(qid, index):
    ref = ast.ColumnRef(None, "c%d" % index)
    ref.quantifier_id = qid
    ref.column_index = index
    ref.type_name = "INT"
    return ref


class TestBasics:
    def test_literal(self):
        assert evaluate(lit(5), {}) == 5

    def test_column(self):
        assert evaluate(col(0, 1), {0: (10, 20)}) == 20

    def test_missing_quantifier_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(col(3, 0), {0: (1,)})

    def test_group_ref(self):
        ref = GroupRef(1, "INT", "x")
        assert evaluate(ref, {GROUP_ENV: (7, 8)}) == 8

    def test_group_ref_outside_grouping(self):
        with pytest.raises(ExecutionError):
            evaluate(GroupRef(0, "INT", "x"), {})

    def test_parameters_positional_and_named(self):
        assert evaluate(ast.Parameter(ordinal=1), {}, params=[5, 6]) == 6
        assert evaluate(ast.Parameter(name="p"), {}, params={"p": 9}) == 9

    def test_missing_parameter(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.Parameter(ordinal=0), {}, params=None)


class TestArithmetic:
    def test_operators(self):
        env = {}
        assert evaluate(ast.BinaryOp("+", lit(2), lit(3)), env) == 5
        assert evaluate(ast.BinaryOp("-", lit(2), lit(3)), env) == -1
        assert evaluate(ast.BinaryOp("*", lit(2), lit(3)), env) == 6
        assert evaluate(ast.BinaryOp("/", lit(7), lit(2)), env) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.BinaryOp("/", lit(1), lit(0)), {})

    def test_null_propagates(self):
        assert evaluate(ast.BinaryOp("+", lit(None), lit(3)), {}) is None

    def test_concat(self):
        assert evaluate(ast.BinaryOp("||", lit("a"), lit("b")), {}) == "ab"

    def test_unary_minus(self):
        assert evaluate(ast.UnaryOp("-", lit(5)), {}) == -5
        assert evaluate(ast.UnaryOp("-", lit(None)), {}) is None


class TestThreeValuedLogic:
    def test_comparison_with_null_is_unknown(self):
        assert evaluate(ast.BinaryOp("=", lit(None), lit(1)), {}) is None
        assert evaluate(ast.BinaryOp("<", lit(None), lit(1)), {}) is None

    def test_and_kleene(self):
        assert evaluate(
            ast.BinaryOp("AND", lit(False), lit(None)), {}
        ) is False
        assert evaluate(
            ast.BinaryOp("AND", lit(True), lit(None)), {}
        ) is None
        assert evaluate(
            ast.BinaryOp("AND", lit(True), lit(True)), {}
        ) is True

    def test_or_kleene(self):
        assert evaluate(ast.BinaryOp("OR", lit(True), lit(None)), {}) is True
        assert evaluate(ast.BinaryOp("OR", lit(False), lit(None)), {}) is None
        assert evaluate(ast.BinaryOp("OR", lit(False), lit(False)), {}) is False

    def test_not_unknown(self):
        assert evaluate(ast.UnaryOp("NOT", lit(None)), {}) is None

    def test_predicate_treats_unknown_as_false(self):
        assert evaluate_predicate(ast.BinaryOp("=", lit(None), lit(1)), {}) is False

    def test_incompatible_comparison_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.BinaryOp("<", lit("text"), lit(5)), {})


class TestPredicates:
    def test_is_null(self):
        assert evaluate(ast.IsNull(lit(None)), {}) is True
        assert evaluate(ast.IsNull(lit(1)), {}) is False
        assert evaluate(ast.IsNull(lit(1), negated=True), {}) is True

    def test_between(self):
        assert evaluate(ast.Between(lit(5), lit(1), lit(10)), {}) is True
        assert evaluate(ast.Between(lit(0), lit(1), lit(10)), {}) is False
        assert evaluate(
            ast.Between(lit(5), lit(1), lit(10), negated=True), {}
        ) is False
        assert evaluate(ast.Between(lit(None), lit(1), lit(2)), {}) is None

    def test_in_list(self):
        assert evaluate(ast.InList(lit(2), [lit(1), lit(2)]), {}) is True
        assert evaluate(ast.InList(lit(9), [lit(1), lit(2)]), {}) is False

    def test_in_list_null_semantics(self):
        # 9 IN (1, NULL) is unknown; 1 IN (1, NULL) is true.
        assert evaluate(ast.InList(lit(9), [lit(1), lit(None)]), {}) is None
        assert evaluate(ast.InList(lit(1), [lit(1), lit(None)]), {}) is True
        # NOT IN with NULL in the list is never true.
        assert evaluate(
            ast.InList(lit(9), [lit(1), lit(None)], negated=True), {}
        ) is None

    def test_case(self):
        expr = ast.CaseExpr(
            [(ast.BinaryOp("=", lit(1), lit(2)), lit("a")),
             (ast.BinaryOp("=", lit(1), lit(1)), lit("b"))],
            lit("z"),
        )
        assert evaluate(expr, {}) == "b"

    def test_case_default(self):
        expr = ast.CaseExpr([(lit(False), lit("a"))], None)
        assert evaluate(expr, {}) is None


class TestLike:
    def test_percent(self):
        assert like_match("hello world", "%world")
        assert like_match("hello world", "hello%")
        assert like_match("hello world", "%lo wo%")
        assert not like_match("hello", "%world%")

    def test_underscore(self):
        assert like_match("cat", "c_t")
        assert not like_match("cart", "c_t")

    def test_exact(self):
        assert like_match("abc", "abc")
        assert not like_match("abc", "ab")

    def test_regex_chars_escaped(self):
        assert like_match("a.c", "a.c")
        assert not like_match("abc", "a.c")

    def test_like_node_with_null(self):
        assert evaluate(ast.Like(lit(None), lit("%x%")), {}) is None

    def test_not_like(self):
        assert evaluate(ast.Like(lit("abc"), lit("z%"), negated=True), {}) is True


class TestScalarFunctions:
    def test_abs_length_case_functions(self):
        assert evaluate(ast.FunctionCall("ABS", [lit(-5)]), {}) == 5
        assert evaluate(ast.FunctionCall("LENGTH", [lit("abcd")]), {}) == 4
        assert evaluate(ast.FunctionCall("LOWER", [lit("AbC")]), {}) == "abc"
        assert evaluate(ast.FunctionCall("UPPER", [lit("AbC")]), {}) == "ABC"

    def test_coalesce(self):
        assert evaluate(
            ast.FunctionCall("COALESCE", [lit(None), lit(None), lit(3)]), {}
        ) == 3

    def test_null_in(self):
        assert evaluate(ast.FunctionCall("ABS", [lit(None)]), {}) is None

    def test_aggregate_outside_grouping_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.FunctionCall("SUM", [lit(1)]), {})

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.FunctionCall("FROB", [lit(1)]), {})
