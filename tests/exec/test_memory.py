"""Unit tests for the memory governor (paper eqs. 4 and 5)."""

import pytest

from repro.buffer import BufferPool
from repro.common import SimClock
from repro.common.errors import MemoryQuotaExceededError
from repro.exec import MemoryGovernor
from repro.storage import FlashDisk, Volume


@pytest.fixture
def governor():
    volume = Volume(FlashDisk(SimClock(), 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=400)
    return MemoryGovernor(pool, max_pool_pages=1000, multiprogramming_level=4)


def test_hard_limit_formula(governor):
    # (3/4 * max pool) / active requests  (eq. 4)
    task = governor.begin_task()
    assert task.hard_limit_pages == int(0.75 * 1000 / 1)
    task2 = governor.begin_task()
    assert task.hard_limit_pages == int(0.75 * 1000 / 2)
    governor.end_task(task2)
    assert task.hard_limit_pages == int(0.75 * 1000 / 1)


def test_soft_limit_formula(governor):
    # current pool size / multiprogramming level  (eq. 5)
    task = governor.begin_task()
    assert task.soft_limit_pages == 400 // 4


def test_soft_limit_tracks_pool_resizes(governor):
    task = governor.begin_task()
    governor.pool.set_capacity(200)
    assert task.soft_limit_pages == 200 // 4


def test_hard_limit_exceeded_terminates(governor):
    task = governor.begin_task()
    with pytest.raises(MemoryQuotaExceededError):
        task.allocate(task.hard_limit_pages + 1)


def test_allocate_release_roundtrip(governor):
    task = governor.begin_task()
    task.allocate(50)
    assert task.used_pages == 50
    task.release(20)
    assert task.used_pages == 30
    task.release(1000)
    assert task.used_pages == 0


class _FakeConsumer:
    def __init__(self, pages):
        self.memory_pages = pages
        self.relinquish_calls = 0

    def relinquish_memory(self):
        self.relinquish_calls += 1
        freed = self.memory_pages
        self.memory_pages = 0
        return freed


def test_soft_limit_triggers_reclamation(governor):
    task = governor.begin_task()
    consumer = _FakeConsumer(pages=60)
    task.register_consumer(consumer, depth=0)
    task.allocate(task.soft_limit_pages)  # at the limit
    task.allocate(10)  # pushes over: reclamation must fire
    assert consumer.relinquish_calls == 1
    assert task.soft_limit_hits == 1


def test_reclamation_is_top_down(governor):
    # "requesting that memory be relinquished starting at the 'highest'
    # consuming operator and moving down the execution tree"
    task = governor.begin_task()
    order = []

    class Tracker:
        def __init__(self, name):
            self.name = name
            self.memory_pages = 1000

        def relinquish_memory(self):
            order.append(self.name)
            return 1000

    deep = Tracker("scan")       # depth 2: near the inputs
    middle = Tracker("join")     # depth 1
    top = Tracker("group-by")    # depth 0: consumer at the top
    task.register_consumer(deep, depth=2)
    task.register_consumer(top, depth=0)
    task.register_consumer(middle, depth=1)
    task.allocate(task.soft_limit_pages + 1)
    assert order[0] == "group-by"


def test_unregister_consumer(governor):
    task = governor.begin_task()
    consumer = _FakeConsumer(10)
    task.register_consumer(consumer, depth=0)
    task.unregister_consumer(consumer)
    task.allocate(task.soft_limit_pages + 1)
    assert consumer.relinquish_calls == 0


def test_headroom(governor):
    task = governor.begin_task()
    soft = task.soft_limit_pages
    assert task.headroom_pages() == soft
    task.allocate(soft // 2)
    assert task.headroom_pages() == soft - soft // 2


def test_active_requests_counts_tasks(governor):
    assert governor.active_requests == 1  # never below one
    tasks = [governor.begin_task() for __ in range(3)]
    assert governor.active_requests == 3
    for task in tasks:
        governor.end_task(task)
    assert governor.active_requests == 1
