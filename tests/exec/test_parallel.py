"""Unit tests for intra-query parallelism (Section 4.4)."""

import pytest

from repro.common import SimClock
from repro.exec.parallel import (
    BloomFilter,
    BloomStage,
    FilterStage,
    GroupByStage,
    JoinStage,
    ParallelPipeline,
    WorkerPool,
)


class TestWorkerPool:
    def test_needs_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_fcfs_balances_uniform_work(self):
        pool = WorkerPool(4)
        for __ in range(400):
            pool.dispatch(10.0)
        assert pool.imbalance() == pytest.approx(1.0, abs=0.01)

    def test_fcfs_balances_skewed_work(self):
        # The key property of first-come-first-serve morsels: even with
        # wildly variable morsel costs, workers stay balanced.
        pool = WorkerPool(4)
        for index in range(400):
            pool.dispatch(1.0 if index % 10 else 200.0)
        assert pool.imbalance() < 1.15

    def test_wall_clock_is_critical_path(self):
        pool = WorkerPool(2)
        pool.dispatch(100.0)
        pool.dispatch(30.0)
        assert pool.wall_clock_us() == pytest.approx(
            100.0 + pool.setup_us
        )

    def test_reduce_to_fewer_workers(self):
        pool = WorkerPool(4)
        for __ in range(100):
            pool.dispatch(10.0)
        pool.reduce_to(1)
        assert pool.n_workers == 1
        assert pool.reductions == 1
        for __ in range(100):
            pool.dispatch(10.0)
        # All later work lands on the lone survivor.
        assert pool.wall_clock_us() >= 1000.0

    def test_reduce_below_one_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(2).reduce_to(0)

    def test_reduce_to_more_is_noop(self):
        pool = WorkerPool(2)
        pool.reduce_to(8)
        assert pool.n_workers == 2
        assert pool.reductions == 0


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter()
        keys = list(range(0, 2000, 7))
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_mostly_rejects_absent_keys(self):
        bloom = BloomFilter(n_bits=65536)
        for key in range(500):
            bloom.add(key)
        false_positives = sum(
            1 for key in range(10_000, 20_000) if bloom.might_contain(key)
        )
        assert false_positives < 500  # < 5%


def make_star_pipeline(n_facts=2000, n_dims=100):
    facts = [(i, i % n_dims, float(i % 7)) for i in range(n_facts)]
    dims = [(d, "name%d" % d) for d in range(n_dims)]
    join = JoinStage(
        dims, build_key=lambda d: d[0], probe_key=lambda f: f[1]
    )
    return facts, dims, join


class TestPipeline:
    def test_join_results_correct(self):
        facts, dims, join = make_star_pipeline()
        pipeline = ParallelPipeline(facts, [join])
        output, stats = pipeline.run(n_workers=4)
        assert len(output) == len(facts)  # every fact matches one dim
        fact, dim = output[0]
        assert fact[1] == dim[0]

    def test_results_independent_of_worker_count(self):
        facts, dims, join_a = make_star_pipeline()
        out1, __ = ParallelPipeline(facts, [join_a]).run(n_workers=1)
        __, dims_b, join_b = make_star_pipeline()
        out8, __stats = ParallelPipeline(facts, [join_b]).run(n_workers=8)
        assert sorted(map(repr, out1)) == sorted(map(repr, out8))

    def test_parallel_speedup_near_linear(self):
        facts, __, join1 = make_star_pipeline(n_facts=5000)
        __, __d, join4 = make_star_pipeline(n_facts=5000)
        __, stats1 = ParallelPipeline(facts, [join1]).run(n_workers=1)
        __, stats4 = ParallelPipeline(facts, [join4]).run(n_workers=4)
        speedup = stats4.speedup_over(stats1)
        assert 3.0 < speedup <= 4.2

    def test_total_work_roughly_constant(self):
        # Parallelism should not inflate the total work much.
        facts, __, join1 = make_star_pipeline(n_facts=5000)
        __, __d, join8 = make_star_pipeline(n_facts=5000)
        __, stats1 = ParallelPipeline(facts, [join1]).run(n_workers=1)
        __, stats8 = ParallelPipeline(facts, [join8]).run(n_workers=8)
        assert stats8.total_work_us < stats1.total_work_us * 1.10

    def test_reduction_to_one_only_slightly_worse_than_serial(self):
        """The paper's claim: 'if the number of threads is dynamically
        reduced to one, then the total cost of the query is only slightly
        worse than if it was never set up to use parallelism.'"""
        facts, __, join_serial = make_star_pipeline(n_facts=5000)
        __, __d, join_reduced = make_star_pipeline(n_facts=5000)
        __, serial = ParallelPipeline(facts, [join_serial]).run(n_workers=1)
        __, reduced = ParallelPipeline(facts, [join_reduced]).run(
            n_workers=8, reduce_to=1, reduce_at_fraction=0.0
        )
        assert reduced.wall_clock_us <= serial.wall_clock_us * 1.10
        assert reduced.workers_final == 1

    def test_bloom_stage_filters(self):
        facts, dims, join = make_star_pipeline(n_facts=1000, n_dims=100)
        bloom = BloomStage(
            keys=[d for d in range(0, 100, 2)], probe_key=lambda f: f[1]
        )
        pipeline = ParallelPipeline(facts, [bloom, join])
        output, __ = pipeline.run(n_workers=2)
        assert all(fact[1] % 2 == 0 for fact, __d in output)

    def test_filter_stage(self):
        facts, dims, join = make_star_pipeline(n_facts=1000)
        stage = FilterStage(lambda f: f[2] == 0.0)
        output, __ = ParallelPipeline(facts, [stage, join]).run(n_workers=3)
        assert all(fact[2] == 0.0 for fact, __d in output)

    def test_multi_join_pipeline(self):
        # Right-deep two-join pipeline: fact -> dim1 -> dim2.
        facts = [(i, i % 10, i % 5) for i in range(500)]
        dim1 = [(d, "a%d" % d) for d in range(10)]
        dim2 = [(d, "b%d" % d) for d in range(5)]
        join1 = JoinStage(dim1, lambda d: d[0], lambda f: f[1])
        join2 = JoinStage(
            dim2, lambda d: d[0], lambda pair: pair[0][2]
        )
        output, stats = ParallelPipeline(facts, [join1, join2]).run(4)
        assert len(output) == 500
        (fact, d1), d2 = output[0]
        assert d1[0] == fact[1] and d2[0] == fact[2]
        assert stats.imbalance < 1.2

    def test_group_by_stage(self):
        facts, dims, join = make_star_pipeline(n_facts=2000, n_dims=10)
        group_by = GroupByStage(
            key_fn=lambda pair: pair[1][0],       # group by dim id
            init_fn=lambda: [0],
            accumulate_fn=lambda state, row: state.__setitem__(0, state[0] + 1),
            merge_fn=lambda a, b: a.__setitem__(0, a[0] + b[0]),
        )
        pipeline = ParallelPipeline(facts, [join], group_by=group_by)
        groups, __ = pipeline.run(n_workers=4)
        assert len(groups) == 10
        assert all(state[0] == 200 for state in groups.values())

    def test_group_by_independent_of_workers(self):
        results = []
        for workers in (1, 4):
            facts, __, join = make_star_pipeline(n_facts=1000, n_dims=8)
            group_by = GroupByStage(
                key_fn=lambda pair: pair[1][0],
                init_fn=lambda: [0],
                accumulate_fn=lambda s, r: s.__setitem__(0, s[0] + 1),
                merge_fn=lambda a, b: a.__setitem__(0, a[0] + b[0]),
            )
            groups, __s = ParallelPipeline(facts, [join], group_by=group_by).run(
                workers
            )
            results.append(sorted((k, s[0]) for k, s in groups.items()))
        assert results[0] == results[1]

    def test_charges_simulated_clock(self):
        clock = SimClock()

        class Ctx:
            pass

        ctx = Ctx()
        ctx.clock = clock
        facts, __, join = make_star_pipeline()
        ParallelPipeline(facts, [join]).run(n_workers=2, ctx=ctx)
        assert clock.now > 0
