"""Tests for engine-integrated intra-query parallelism
(SET OPTION max_query_tasks, Section 4.4)."""

import pytest

from repro import Server, ServerConfig


@pytest.fixture
def conn():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=2048))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
    )
    connection.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT, amount INT)"
    )
    server.load_table(
        "customer", [(i, "r%d" % (i % 4)) for i in range(500)]
    )
    server.load_table(
        "orders", [(i, i % 500, i % 100) for i in range(5000)]
    )
    return connection

JOIN_SQL = (
    "SELECT COUNT(*) FROM customer c JOIN orders o ON o.cust_id = c.id"
)


class TestEngineParallelism:
    def test_serial_by_default(self, conn):
        result = conn.execute(JOIN_SQL)
        assert "parallel_workers" not in result.notes
        assert result.rows == [(5000,)]

    def test_parallel_when_option_set(self, conn):
        conn.execute("SET OPTION max_query_tasks = 4")
        result = conn.execute(JOIN_SQL)
        assert result.notes.get("parallel_workers") == 4
        assert result.rows == [(5000,)]

    def test_parallel_matches_serial_answers(self, conn):
        queries = [
            JOIN_SQL,
            "SELECT c.region, COUNT(*) FROM customer c "
            "JOIN orders o ON o.cust_id = c.id GROUP BY c.region "
            "ORDER BY c.region",
            "SELECT c.region, SUM(o.amount) FROM customer c "
            "JOIN orders o ON o.cust_id = c.id "
            "GROUP BY c.region HAVING COUNT(*) > 100 ORDER BY c.region",
        ]
        serial = [conn.execute(sql).rows for sql in queries]
        conn.execute("SET OPTION max_query_tasks = 8")
        parallel = []
        for sql in queries:
            result = conn.execute(sql)
            assert result.notes.get("parallel_workers") == 8
            parallel.append(result.rows)
        assert serial == parallel

    def test_parallel_wall_clock_below_serial(self, conn):
        server = conn.server

        def timed(sql):
            start = server.clock.now
            conn.execute(sql)
            return server.clock.now - start

        serial_us = timed(JOIN_SQL)
        conn.execute("SET OPTION max_query_tasks = 8")
        parallel_us = timed(JOIN_SQL)
        assert parallel_us < serial_us

    def test_ineligible_shapes_fall_back(self, conn):
        conn.execute("SET OPTION max_query_tasks = 4")
        # A LEFT JOIN core is not parallel-eligible: serial fallback.
        result = conn.execute(
            "SELECT COUNT(*) FROM customer c LEFT JOIN orders o "
            "ON o.cust_id = c.id"
        )
        assert "parallel_workers" not in result.notes
        assert result.rows == [(5000,)]

    def test_single_table_falls_back(self, conn):
        conn.execute("SET OPTION max_query_tasks = 4")
        result = conn.execute("SELECT COUNT(*) FROM orders")
        assert "parallel_workers" not in result.notes
        assert result.rows == [(5000,)]

    def test_filters_still_apply(self, conn):
        conn.execute("SET OPTION max_query_tasks = 4")
        serial = conn.execute(
            "SELECT COUNT(*) FROM customer c JOIN orders o "
            "ON o.cust_id = c.id WHERE o.amount < 10 AND c.region = 'r1'"
        )
        assert serial.rows[0][0] > 0
        # Recompute by hand: amount<10 -> ids 0..9 mod 100; region r1 ->
        # cust ids = 1 mod 4.  Both joins filter multiplicatively.
        expected = sum(
            1 for i in range(5000)
            if i % 100 < 10 and (i % 500) % 4 == 1
        )
        assert serial.rows == [(expected,)]
