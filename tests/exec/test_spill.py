"""Unit tests for work-memory accounting and temp-file spilling."""

import pytest

from repro.buffer import BufferPool
from repro.common import SimClock
from repro.common.errors import ExecutionError
from repro.exec import MemoryGovernor
from repro.exec.spill import (
    SpillFile,
    SpillableBuffer,
    WorkMemory,
    env_row_bytes,
)
from repro.storage import FlashDisk, Volume


@pytest.fixture
def env():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 100_000))
    temp = volume.create_file("temp")
    pool = BufferPool(temp, capacity_pages=64)
    governor = MemoryGovernor(pool, 1024, multiprogramming_level=4)
    task = governor.begin_task()

    class Ctx:
        pass

    ctx = Ctx()
    ctx.pool = pool
    ctx.temp_file = temp
    ctx.task = task
    return ctx, temp, task, volume


class TestEnvRowBytes:
    def test_scales_with_columns(self):
        small = env_row_bytes({0: (1,)})
        large = env_row_bytes({0: (1,) * 10, 1: (2,) * 10})
        assert large > small

    def test_non_sized_payload(self):
        assert env_row_bytes({0: 42}) > 0


class TestWorkMemory:
    def test_pages_track_bytes(self, env):
        ctx, __, task, __v = env
        memory = WorkMemory(task, ctx.pool.page_size)
        memory.add(ctx.pool.page_size * 3)
        assert memory.pages_held == 3
        assert task.used_pages == 3
        memory.remove(ctx.pool.page_size * 2)
        assert memory.pages_held == 1
        memory.release_all()
        assert task.used_pages == 0

    def test_partial_pages_round_up(self, env):
        ctx, __, task, __v = env
        memory = WorkMemory(task, ctx.pool.page_size)
        memory.add(1)
        assert memory.pages_held == 1

    def test_would_exceed_soft(self, env):
        ctx, __, task, __v = env
        memory = WorkMemory(task, ctx.pool.page_size)
        headroom_bytes = task.headroom_pages() * ctx.pool.page_size
        assert not memory.would_exceed_soft(headroom_bytes - ctx.pool.page_size)
        assert memory.would_exceed_soft(headroom_bytes + 2 * ctx.pool.page_size)


class TestSpillFile:
    def test_roundtrip_in_order(self, env):
        ctx, temp, __, __v = env
        spill = SpillFile(temp, row_bytes_estimate=64, page_size=ctx.pool.page_size)
        for i in range(500):
            spill.append(("row", i))
        assert spill.row_count == 500
        assert list(spill.read_all()) == [("row", i) for i in range(500)]

    def test_charges_device_io(self, env):
        ctx, temp, __, volume = env
        writes_before = volume.disk.writes
        spill = SpillFile(temp, 64, ctx.pool.page_size)
        for i in range(500):
            spill.append(i)
        spill.finish_writing()
        assert volume.disk.writes > writes_before

    def test_free_releases_pages(self, env):
        ctx, temp, __, __v = env
        spill = SpillFile(temp, 64, ctx.pool.page_size)
        for i in range(500):
            spill.append(i)
        spill.finish_writing()
        assert temp.page_count > 0
        spill.free()
        assert temp.page_count == 0

    def test_multiple_read_passes(self, env):
        ctx, temp, __, __v = env
        spill = SpillFile(temp, 64, ctx.pool.page_size)
        for i in range(100):
            spill.append(i)
        first = list(spill.read_all())
        second = list(spill.read_all())
        assert first == second


class TestSpillableBuffer:
    def test_small_buffer_stays_in_memory(self, env):
        ctx, temp, __, __v = env
        buffer = SpillableBuffer(ctx, row_bytes_estimate=64)
        for i in range(10):
            buffer.append({0: (i,)})
        buffer.seal()
        assert temp.page_count == 0
        assert len(buffer) == 10
        assert [env_row[0][0] for env_row in buffer.scan()] == list(range(10))

    def test_large_buffer_spills(self, env):
        ctx, temp, task, __v = env
        buffer = SpillableBuffer(ctx, row_bytes_estimate=ctx.pool.page_size)
        n = task.soft_limit_pages + 20
        for i in range(n):
            buffer.append({0: (i,)})
        buffer.seal()
        assert temp.page_count > 0  # tail went to disk
        assert len(buffer) == n
        assert [env_row[0][0] for env_row in buffer.scan()] == list(range(n))

    def test_append_after_seal_rejected(self, env):
        ctx, __, __t, __v = env
        buffer = SpillableBuffer(ctx)
        buffer.seal()
        with pytest.raises(ExecutionError):
            buffer.append({0: (1,)})

    def test_free_releases_everything(self, env):
        ctx, temp, task, __v = env
        buffer = SpillableBuffer(ctx, row_bytes_estimate=ctx.pool.page_size)
        for i in range(task.soft_limit_pages + 20):
            buffer.append({0: (i,)})
        buffer.free()
        assert temp.page_count == 0
        assert task.used_pages == 0
