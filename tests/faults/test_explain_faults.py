"""Statement-level fault surfacing: survived retries show up in the
statement's notes and in the EXPLAIN ANALYZE rendering (satellite of the
crash-recovery PR — operators diagnosing a slow statement see the
injections it absorbed)."""

from repro import Server, ServerConfig
from repro.faults import FaultPlan, FaultRates
from repro.faults.plan import DISK_READ_ERROR

#: All ambient rates off: only the site a test cranks explicitly fires.
QUIET = dict(
    disk_read_error=0.0,
    disk_write_error=0.0,
    disk_latency=0.0,
    working_set_outage=0.0,
    spill_write_error=0.0,
    log_force_error=0.0,
)


def make_server(seed=11):
    plan = FaultPlan(seed, rates=FaultRates(**QUIET))
    server = Server(
        ServerConfig(start_buffer_governor=False, fault_plan=plan)
    )
    return server, server.fault_plan


def populated(server):
    conn = server.connect()
    conn.execute("CREATE TABLE t (a INT, b INT)")
    for i in range(32):
        conn.execute("INSERT INTO t VALUES (?, ?)", params=[i, i * i])
    server.checkpoint()
    server.pool.drop_all()  # the next scan must go back to the device
    return conn


class TestExplainAnalyzeFaults:
    def test_retried_statement_reports_its_faults(self):
        server, plan = make_server()
        conn = populated(server)
        plan.rates.disk_read_error = 1.0
        plan.budgets[DISK_READ_ERROR] = 2  # deterministic: exactly two
        result = conn.execute("SELECT a FROM t ORDER BY a")
        assert len(result) == 32
        assert result.notes["faults"] == {"injected": 2, "retries": 2}
        rendered = result.explain(analyze=True)
        assert "faults: injected=2 retries=2" in rendered
        conn.close()

    def test_quiet_statement_carries_no_faults_note(self):
        server, __ = make_server()
        conn = populated(server)
        result = conn.execute("SELECT a FROM t ORDER BY a")
        assert "faults" not in result.notes
        assert "faults:" not in result.explain(analyze=True)
        conn.close()

    def test_fault_free_plain_explain_unchanged(self):
        server, plan = make_server()
        conn = populated(server)
        plan.rates.disk_read_error = 1.0
        plan.budgets[DISK_READ_ERROR] = 1
        result = conn.execute("SELECT a FROM t")
        # Non-analyze EXPLAIN stays a pure plan rendering.
        assert "faults:" not in result.explain(analyze=False)
        assert result.notes["faults"]["injected"] == 1
        conn.close()
