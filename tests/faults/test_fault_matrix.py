"""Fault-matrix integration tests.

For each injector layer the contract is the same: a statement either
succeeds (possibly after bounded retries) or dies with a *typed* fault
error; the server and every other statement survive; the sanitizers
(autouse in this suite) see zero pin/quota leaks afterwards; and the
``faults.*`` counters agree with the plan's injection log.
"""

import pytest

from repro import Server, ServerConfig
from repro.buffer import GovernorConfig
from repro.common import MiB
from repro.common.errors import FaultError, IOFaultError, SpillWriteError
from repro.faults import FaultPlan, FaultRates


def quiet_rates(**overrides):
    rates = FaultRates(
        disk_read_error=0.0,
        disk_write_error=0.0,
        disk_latency=0.0,
        working_set_outage=0.0,
        spill_write_error=0.0,
    )
    for name, value in overrides.items():
        setattr(rates, name, value)
    return rates


def make_server(plan, pool_pages=2048, mpl=4):
    config = ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=pool_pages,
        multiprogramming_level=mpl,
        governor=GovernorConfig(upper_bound_bytes=64 * MiB),
        fault_plan=plan,
    )
    return Server(config)


def load_rows(conn, n=2000):
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, pad VARCHAR(40))")
    conn.server.load_table(
        "t", [(i, (i * 37) % 1000, "pad-%06d" % i) for i in range(n)]
    )


class TestStorageFaults:
    def test_read_fault_aborts_statement_only(self):
        plan = FaultPlan(11, quiet_rates())
        server = make_server(plan, pool_pages=64)
        conn = server.connect()
        load_rows(conn)
        plan.rates.disk_read_error = 1.0
        with pytest.raises(IOFaultError):
            conn.execute("SELECT COUNT(*) FROM t")
        assert plan.statement_aborts == 1
        # The server survives: heal the disk and the same statement runs.
        plan.rates.disk_read_error = 0.0
        result = conn.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [(2000,)]

    def test_write_fault_aborts_statement_only(self):
        plan = FaultPlan(12, quiet_rates())
        server = make_server(plan, pool_pages=64)
        conn = server.connect()
        load_rows(conn)
        plan.rates.disk_write_error = 1.0
        with pytest.raises(FaultError):
            # Dirties pages beyond the small pool: eviction writebacks hit
            # the injected write failures.
            for i in range(2000, 4000):
                conn.execute(
                    "INSERT INTO t VALUES (%d, %d, 'x')" % (i, i)
                )
        plan.rates.disk_write_error = 0.0
        assert conn.execute("SELECT COUNT(*) FROM t WHERE id < 2000").rows \
            == [(2000,)]

    def test_transient_rates_ride_out_on_retries(self):
        plan = FaultPlan(13, quiet_rates(
            disk_read_error=0.05, disk_write_error=0.05, disk_latency=0.05,
        ))
        server = make_server(plan, pool_pages=64)
        conn = server.connect()
        load_rows(conn)
        result = conn.execute("SELECT COUNT(*) FROM t WHERE v < 500")
        assert result.rows[0][0] > 0
        assert plan.injected > 0
        assert plan.retries > 0
        assert plan.statement_aborts == 0


class TestSpillFaults:
    def test_spill_fault_aborts_sort_statement(self):
        plan = FaultPlan(21, quiet_rates(spill_write_error=1.0))
        server = make_server(plan, pool_pages=128, mpl=16)
        conn = server.connect()
        load_rows(conn, n=3000)
        with pytest.raises(SpillWriteError):
            conn.execute("SELECT id, v FROM t ORDER BY v, id")
        assert plan.statement_aborts == 1
        # All pins and quota released (sanitizers already asserted at the
        # statement boundary); the healed server finishes the same sort.
        plan.rates.spill_write_error = 0.0
        result = conn.execute("SELECT id, v FROM t ORDER BY v, id")
        assert len(result.rows) == 3000

    def test_spill_retries_then_succeeds(self):
        plan = FaultPlan(22, quiet_rates(spill_write_error=0.1))
        server = make_server(plan, pool_pages=128, mpl=16)
        conn = server.connect()
        load_rows(conn, n=3000)
        result = conn.execute("SELECT id, v FROM t ORDER BY v, id")
        assert len(result.rows) == 3000
        assert plan.statement_aborts == 0
        spill_faults = plan.injections_by_site().get("exec.spill_write", 0)
        assert spill_faults > 0


class TestOssimFaults:
    def test_probe_outages_do_not_disturb_statements(self):
        plan = FaultPlan(31, quiet_rates(working_set_outage=1.0))
        server = make_server(plan)
        conn = server.connect()
        load_rows(conn, n=500)
        for __ in range(5):
            server.buffer_governor.poll_once()
        result = conn.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [(500,)]
        assert plan.injections_by_site()["ossim.working_set_outage"] == 5
        assert server.metrics.snapshot()["governor.ws_probe_outages"] == 5

    def test_hostile_process_never_aborts_statements(self):
        rates = quiet_rates()
        rates.hostile_interval_us = 200_000
        rates.hostile_hold_us = 400_000
        rates.hostile_grab_bytes = 32 * MiB
        plan = FaultPlan(32, rates)
        server = make_server(plan)
        assert server.hostile_process is not None
        conn = server.connect()
        load_rows(conn, n=1000)
        for __ in range(10):
            server.clock.advance(150_000)
            server.buffer_governor.poll_once()
            assert conn.execute(
                "SELECT COUNT(*) FROM t"
            ).rows == [(1000,)]
        assert server.hostile_process.bursts > 0
        assert plan.statement_aborts == 0


def chaos_workload(server):
    conn = server.connect()
    conn.execute(
        "CREATE TABLE w (id INT PRIMARY KEY, v INT, pad VARCHAR(30))"
    )
    server.load_table(
        "w", [(i, (i * 17) % 400, "p%05d" % i) for i in range(1500)]
    )
    conn.execute("SELECT COUNT(*) FROM w WHERE v < 200")
    conn.execute("SELECT v, COUNT(*) FROM w GROUP BY v")
    conn.execute("SELECT id, v FROM w ORDER BY v, id")
    server.buffer_governor.poll_once()
    conn.execute("SELECT MAX(v) FROM w")
    return conn


def moderate_rates():
    return quiet_rates(
        disk_read_error=0.02,
        disk_write_error=0.02,
        disk_latency=0.02,
        working_set_outage=0.2,
        spill_write_error=0.02,
    )


class TestAccountingAndDeterminism:
    def test_counters_match_injection_log(self):
        plan = FaultPlan(41, moderate_rates())
        server = make_server(plan, pool_pages=96, mpl=16)
        chaos_workload(server)
        assert plan.injected > 0
        assert plan.injected == len(plan.log)
        by_site = plan.injections_by_site()
        assert sum(by_site.values()) == plan.injected
        snap = server.metrics.snapshot()
        assert snap["faults.injected"] == plan.injected
        assert snap["faults.retries"] == plan.retries
        assert snap["faults.statement_aborts"] == plan.statement_aborts

    def test_same_seed_yields_byte_identical_log(self):
        logs = []
        for __ in range(2):
            plan = FaultPlan(42, moderate_rates())
            server = make_server(plan, pool_pages=96, mpl=16)
            chaos_workload(server)
            logs.append(plan.log_lines())
        assert logs[0] == logs[1]
        assert logs[0]  # non-trivial: faults actually fired

    def test_different_seed_yields_different_log(self):
        logs = []
        for seed in (43, 44):
            plan = FaultPlan(seed, moderate_rates())
            server = make_server(plan, pool_pages=96, mpl=16)
            chaos_workload(server)
            logs.append(plan.log_lines())
        assert logs[0] != logs[1]

    def test_env_seed_wires_every_server(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "55")
        server_a = make_server(plan=None)
        server_b = make_server(plan=None)
        assert server_a.fault_plan is not None
        assert server_b.fault_plan is not None
        assert server_a.fault_plan is not server_b.fault_plan
        assert server_a.fault_plan.seed == 55

    def test_tracer_records_every_injection(self):
        from repro.profiling.tracer import Tracer

        plan = FaultPlan(45, moderate_rates())
        server = make_server(plan, pool_pages=96, mpl=16)
        server.tracer = Tracer()
        before = plan.injected
        chaos_workload(server)
        fired_while_tracing = plan.injected - before
        assert fired_while_tracing > 0
        assert len(server.tracer.fault_events) == fired_while_tracing
