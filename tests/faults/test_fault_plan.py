"""FaultPlan unit tests: seeding, substreams, accounting, env parsing."""

from repro.common.clock import SimClock
from repro.faults import (
    DISK_READ_ERROR,
    DISK_WRITE_ERROR,
    FaultPlan,
    FaultRates,
    plan_from_env,
)
from repro.profiling.metrics import MetricsRegistry
from repro.profiling.tracer import Tracer


class TestDecisions:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(42).bind(SimClock())
        b = FaultPlan(42).bind(SimClock())
        draws_a = [a.should(DISK_READ_ERROR, 0.5) for __ in range(200)]
        draws_b = [b.should(DISK_READ_ERROR, 0.5) for __ in range(200)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        a = FaultPlan(1).bind(SimClock())
        b = FaultPlan(2).bind(SimClock())
        draws_a = [a.should(DISK_READ_ERROR, 0.5) for __ in range(200)]
        draws_b = [b.should(DISK_READ_ERROR, 0.5) for __ in range(200)]
        assert draws_a != draws_b

    def test_sites_are_independent_substreams(self):
        """Consulting one site must not perturb another site's stream."""
        lone = FaultPlan(7).bind(SimClock())
        mixed = FaultPlan(7).bind(SimClock())
        lone_draws = [lone.should(DISK_READ_ERROR, 0.5) for __ in range(100)]
        mixed_draws = []
        for __ in range(100):
            mixed.should(DISK_WRITE_ERROR, 0.5)  # interleaved other-site use
            mixed_draws.append(mixed.should(DISK_READ_ERROR, 0.5))
        assert lone_draws == mixed_draws

    def test_zero_probability_never_fires_nor_draws(self):
        plan = FaultPlan(7).bind(SimClock())
        assert not any(plan.should(DISK_READ_ERROR, 0.0) for __ in range(50))
        # The p=0 short-circuit must not consume stream state either.
        fresh = FaultPlan(7).bind(SimClock())
        assert [plan.should(DISK_READ_ERROR, 0.5) for __ in range(50)] == [
            fresh.should(DISK_READ_ERROR, 0.5) for __ in range(50)
        ]


class TestAccounting:
    def test_record_appends_log_and_counts(self):
        clock = SimClock()
        metrics = MetricsRegistry(clock)
        plan = FaultPlan(1).bind(clock, metrics)
        clock.advance(500)
        plan.record(DISK_READ_ERROR, "page=3")
        clock.advance(100)
        plan.record(DISK_WRITE_ERROR, "page=9")
        assert plan.injected == 2
        assert [r.sequence for r in plan.log] == [0, 1]
        assert plan.log[0].time_us == 500
        assert plan.log[1].time_us == 600
        assert plan.log[0].site == DISK_READ_ERROR
        snap = metrics.snapshot()
        assert snap["faults.injected"] == 2
        assert snap["faults.retries"] == 0
        assert snap["faults.statement_aborts"] == 0

    def test_counters_mirror_log(self):
        plan = FaultPlan(1).bind(SimClock())
        for i in range(17):
            plan.record(DISK_READ_ERROR, "page=%d" % i)
        plan.note_retry(DISK_READ_ERROR)
        plan.note_statement_abort()
        assert plan.injected == len(plan.log) == 17
        assert plan.retries == 1
        assert plan.statement_aborts == 1
        assert plan.injections_by_site() == {DISK_READ_ERROR: 17}

    def test_log_lines_replayable_text(self):
        a = FaultPlan(5).bind(SimClock())
        b = FaultPlan(5).bind(SimClock())
        for plan in (a, b):
            plan.record(DISK_READ_ERROR, "page=1")
            plan.record(DISK_WRITE_ERROR, "page=2")
        assert a.log_lines() == b.log_lines()
        assert DISK_READ_ERROR in a.log_lines()

    def test_tracer_sees_injections(self):
        clock = SimClock()
        tracer = Tracer()
        plan = FaultPlan(1).bind(clock, tracer_fn=lambda: tracer)
        clock.advance(250)
        plan.record(DISK_READ_ERROR, "page=4")
        assert len(tracer.fault_events) == 1
        event = tracer.fault_events[0]
        assert event.site == DISK_READ_ERROR
        assert event.time_us == 250
        assert event.plan_sequence == 0


class TestBudgets:
    def test_unbudgeted_site_is_unbounded(self):
        plan = FaultPlan(3).bind(SimClock())
        assert plan.site_budget_remaining(DISK_READ_ERROR) is None

    def test_budget_counts_down_with_recorded_injections(self):
        plan = FaultPlan(3, budgets={DISK_READ_ERROR: 2}).bind(SimClock())
        assert plan.site_budget_remaining(DISK_READ_ERROR) == 2
        plan.record(DISK_READ_ERROR, "page=1")
        assert plan.site_budget_remaining(DISK_READ_ERROR) == 1
        plan.record(DISK_READ_ERROR, "page=2")
        assert plan.site_budget_remaining(DISK_READ_ERROR) == 0

    def test_exhausted_budget_stops_firing(self):
        plan = FaultPlan(3, budgets={DISK_READ_ERROR: 2}).bind(SimClock())
        fired = 0
        for __ in range(50):
            if plan.should(DISK_READ_ERROR, 1.0):
                plan.record(DISK_READ_ERROR)
                fired += 1
        assert fired == 2
        assert plan.injected == 2

    def test_exhausted_budget_skips_the_draw(self):
        """At budget zero, ``should`` must not consume stream state: the
        site's substream stays aligned with an unbudgeted twin."""
        capped = FaultPlan(9, budgets={DISK_WRITE_ERROR: 0}).bind(SimClock())
        free = FaultPlan(9).bind(SimClock())
        for __ in range(40):
            assert not capped.should(DISK_WRITE_ERROR, 1.0)
        # Same seed, different site: streams must still agree.
        capped_draws = [capped.should(DISK_READ_ERROR, 0.5) for __ in range(60)]
        free_draws = [free.should(DISK_READ_ERROR, 0.5) for __ in range(60)]
        assert capped_draws == free_draws

    def test_budgets_only_cap_their_own_site(self):
        plan = FaultPlan(3, budgets={DISK_READ_ERROR: 0}).bind(SimClock())
        assert not plan.should(DISK_READ_ERROR, 1.0)
        assert plan.should(DISK_WRITE_ERROR, 1.0)

    def test_budget_map_is_copied(self):
        budgets = {DISK_READ_ERROR: 1}
        plan = FaultPlan(3, budgets=budgets).bind(SimClock())
        budgets[DISK_READ_ERROR] = 99  # caller mutation must not leak in
        assert plan.site_budget_remaining(DISK_READ_ERROR) == 1


class TestEnvParsing:
    def test_unset_disables(self):
        assert plan_from_env({}) is None

    def test_empty_and_zero_disable(self):
        assert plan_from_env({"REPRO_FAULTS": ""}) is None
        assert plan_from_env({"REPRO_FAULTS": "0"}) is None

    def test_garbage_disables(self):
        assert plan_from_env({"REPRO_FAULTS": "banana"}) is None

    def test_integer_seed_builds_plan(self):
        plan = plan_from_env({"REPRO_FAULTS": "42"})
        assert isinstance(plan, FaultPlan)
        assert plan.seed == 42

    def test_each_call_builds_fresh_plan(self):
        env = {"REPRO_FAULTS": "7"}
        a, b = plan_from_env(env), plan_from_env(env)
        assert a is not b


class TestRates:
    def test_defaults_keep_hostile_disabled(self):
        rates = FaultRates()
        assert rates.hostile_interval_us == 0

    def test_default_rates_are_survivable(self):
        """Per-I/O abort probability must be negligible at default rates:
        an abort needs (retry limit + 1) consecutive failures."""
        rates = FaultRates()
        abort_p = rates.disk_read_error ** (rates.io_retry_limit + 1)
        assert abort_p < 1e-12
