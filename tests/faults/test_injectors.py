"""Injector-level tests: FaultyDisk + Volume retry, probe outages,
governor ride-out, and the hostile process."""

import pytest

from repro.buffer import BufferGovernor, BufferPool, GovernorConfig
from repro.common import MiB, SimClock
from repro.common.errors import IOFaultError, TransientIOError
from repro.faults import (
    DISK_READ_ERROR,
    FaultPlan,
    FaultRates,
    FaultyDisk,
    HostileProcess,
)
from repro.ossim import OperatingSystem
from repro.ossim.memory import WorkingSetProbeOutage
from repro.storage import FlashDisk, Volume


def make_plan(seed=7, **rate_overrides):
    rates = FaultRates(
        disk_read_error=0.0,
        disk_write_error=0.0,
        disk_latency=0.0,
        working_set_outage=0.0,
        spill_write_error=0.0,
    )
    for name, value in rate_overrides.items():
        setattr(rates, name, value)
    plan = FaultPlan(seed, rates)
    return plan


def make_volume(plan, size_pages=10_000):
    clock = SimClock()
    plan.bind(clock)
    disk = FaultyDisk(FlashDisk(clock, size_pages), plan)
    return clock, disk, Volume(disk)


class TestFaultyDisk:
    def test_delegates_to_inner_device(self):
        plan = make_plan()
        __, disk, __v = make_volume(plan)
        assert disk.size_pages == 10_000
        assert disk.page_size == disk.inner.page_size
        disk.read_page(5)
        assert disk.reads == 1
        disk.reset_counters()
        assert disk.reads == 0

    def test_forced_read_error_raises_transient(self):
        plan = make_plan(disk_read_error=1.0)
        __, disk, __v = make_volume(plan)
        with pytest.raises(TransientIOError) as excinfo:
            disk.read_page(3)
        assert excinfo.value.site == DISK_READ_ERROR
        assert plan.injected == 1

    def test_failed_attempt_charges_error_latency(self):
        plan = make_plan(disk_read_error=1.0)
        clock, disk, __v = make_volume(plan)
        before = clock.now
        with pytest.raises(TransientIOError):
            disk.read_page(3)
        assert clock.now - before == plan.rates.error_latency_us

    def test_latency_spike_charges_clock(self):
        plan = make_plan(disk_latency=1.0)
        clock, disk, __v = make_volume(plan)
        healthy = FlashDisk(SimClock(), 10_000)
        healthy_cost = healthy.read_page(3)
        before = clock.now
        disk.read_page(3)
        assert clock.now - before == healthy_cost + plan.rates.latency_spike_us


class TestVolumeRetry:
    def test_transient_errors_are_retried_to_success(self):
        plan = make_plan(disk_read_error=0.3)
        __, __d, volume = make_volume(plan)
        dbfile = volume.create_file("data")
        for __ in range(50):
            page = dbfile.allocate_page()
            dbfile.write(page, payload="x")
        for page in range(50):
            dbfile.read(page)  # must never raise at 0.3 with 5 retries
        assert plan.injected > 0
        assert plan.retries > 0

    def test_persistent_failure_surfaces_typed_after_budget(self):
        plan = make_plan()
        __, __d, volume = make_volume(plan)
        dbfile = volume.create_file("data")
        page = dbfile.allocate_page()
        dbfile.write(page, payload="x")
        plan.rates.disk_read_error = 1.0
        with pytest.raises(IOFaultError):
            dbfile.read(page)
        # One initial attempt + the full retry budget, all injected.
        assert plan.injected == plan.rates.io_retry_limit + 1
        assert plan.retries == plan.rates.io_retry_limit

    def test_backoff_charges_simulated_time(self):
        plan = make_plan()
        clock, __d, volume = make_volume(plan)
        dbfile = volume.create_file("data")
        page = dbfile.allocate_page()
        dbfile.write(page, payload="x")
        plan.rates.disk_read_error = 1.0
        before = clock.now
        with pytest.raises(IOFaultError):
            dbfile.read(page)
        limit = plan.rates.io_retry_limit
        backoff = plan.rates.io_retry_backoff_us
        expected_backoff = sum(backoff * 2**i for i in range(limit))
        expected_errors = (limit + 1) * plan.rates.error_latency_us
        assert clock.now - before == expected_backoff + expected_errors

    def test_failed_write_leaves_old_payload(self):
        plan = make_plan()
        __, __d, volume = make_volume(plan)
        dbfile = volume.create_file("data")
        page = dbfile.allocate_page()
        dbfile.write(page, payload="old")
        plan.rates.disk_write_error = 1.0
        with pytest.raises(IOFaultError):
            dbfile.write(page, payload="new")
        plan.rates.disk_write_error = 0.0
        assert dbfile.read(page) == "old"


def make_governed_rig(plan, total_memory=128 * MiB):
    clock = SimClock()
    plan.bind(clock)
    os = OperatingSystem(total_memory, fault_plan=plan)
    server_process = os.spawn("dbserver")
    volume = Volume(FlashDisk(clock, 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
    governor = BufferGovernor(
        clock, os, server_process, pool,
        database_size_fn=lambda: 10**12,
        config=GovernorConfig(upper_bound_bytes=64 * MiB),
    )
    return clock, os, server_process, pool, governor


class TestWorkingSetOutage:
    def test_forced_outage_raises(self):
        plan = make_plan(working_set_outage=1.0)
        __, os, process, __p, __g = make_governed_rig(plan)
        with pytest.raises(WorkingSetProbeOutage):
            os.working_set(process)
        assert plan.injections_by_site() == {"ossim.working_set_outage": 1}

    def test_governor_rides_out_on_last_known_working_set(self):
        plan = make_plan()
        __, __os, __pr, pool, governor = make_governed_rig(plan)
        healthy = governor.poll_once()
        assert healthy.working_set is not None
        plan.rates.working_set_outage = 1.0
        outage = governor.poll_once()
        # Rode the outage out on the cached value — same reference input,
        # not the CE fallback's pool-size-based one.
        assert outage.working_set == governor._last_working_set
        assert pool.size_bytes() >= governor.config.lower_bound_bytes

    def test_governor_survives_outage_with_no_history(self):
        plan = make_plan(working_set_outage=1.0)
        __, __os, __pr, __pool, governor = make_governed_rig(plan)
        sample = governor.poll_once()  # CE-style fallback, no crash
        assert sample.working_set is None


class TestHostileProcess:
    def test_bursts_grab_and_release(self):
        plan = make_plan()
        plan.rates.hostile_interval_us = 1_000_000
        plan.rates.hostile_hold_us = 500_000
        plan.rates.hostile_grab_bytes = 16 * MiB
        clock = SimClock()
        plan.bind(clock)
        os = OperatingSystem(128 * MiB)
        hostile = HostileProcess(os, clock, plan)
        assert hostile.bursts == 0
        clock.advance(1_100_000)
        assert hostile.bursts == 1
        assert hostile.held_bytes == 16 * MiB
        clock.advance(500_000)  # past the hold
        assert hostile.held_bytes == 0
        assert plan.injections_by_site()["ossim.hostile_grab"] == 1

    def test_disabled_by_default_schedule(self):
        plan = make_plan()  # hostile_interval_us == 0
        clock = SimClock()
        plan.bind(clock)
        os = OperatingSystem(128 * MiB)
        hostile = HostileProcess(os, clock, plan)
        clock.advance(60_000_000)
        assert hostile.bursts == 0

    def test_governor_shrinks_through_burst(self):
        plan = make_plan()
        plan.rates.hostile_interval_us = 1_000_000
        plan.rates.hostile_hold_us = 10_000_000
        plan.rates.hostile_grab_bytes = 100 * MiB
        __c, os, process, pool, governor = make_governed_rig(
            plan, total_memory=64 * MiB
        )
        process.set_allocation(pool.size_bytes())
        governor.poll_once()
        before = pool.size_bytes()
        hostile = HostileProcess(os, governor.clock, plan)
        governor.clock.advance(1_100_000)  # burst fires
        assert hostile.held_bytes > 0
        governor.poll_once()
        assert pool.size_bytes() <= before
        assert pool.size_bytes() >= governor.config.lower_bound_bytes
