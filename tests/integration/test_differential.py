"""Differential testing: the engine vs a naive Python reference.

Random tables and random (but valid) queries are executed both through
the full engine stack (parser -> binder -> optimizer -> adaptive
executor) and by a transparent Python implementation of the same
semantics.  Any divergence is a bug in some layer of the stack.
"""

import random

import pytest

from repro import Server, ServerConfig

N_LEFT = 120
N_RIGHT = 40


@pytest.fixture(scope="module")
def db():
    rng = random.Random(99)
    left = [
        (
            i,
            rng.randrange(0, 20),              # b: join key / group key
            rng.choice([None, *range(0, 50)]),  # c: nullable int
            float(rng.randrange(0, 1000)) / 10.0,
            rng.choice(["red", "green", "blue", "teal", None]),
        )
        for i in range(N_LEFT)
    ]
    right = [
        (i, rng.randrange(0, 20), "name-%d" % (i % 7))
        for i in range(N_RIGHT)
    ]
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=512))
    conn = server.connect()
    conn.execute(
        "CREATE TABLE l (a INT PRIMARY KEY, b INT, c INT, d DOUBLE, "
        "e VARCHAR(10))"
    )
    conn.execute("CREATE TABLE r (x INT PRIMARY KEY, y INT, z VARCHAR(10))")
    server.load_table("l", left)
    server.load_table("r", right)
    conn.execute("CREATE INDEX l_b ON l (b)")
    return conn, left, right


def run_engine(conn, sql):
    return sorted(conn.execute(sql).rows, key=repr)


# --------------------------------------------------------------------- #
# reference implementation helpers
# --------------------------------------------------------------------- #

def ref_filter(rows, predicate):
    return [row for row in rows if predicate(row)]


def ref_sorted(rows):
    return sorted(rows, key=repr)


# --------------------------------------------------------------------- #
# hand-rolled differential cases over the random data
# --------------------------------------------------------------------- #

class TestFiltersDifferential:
    PREDICATES = [
        ("b = 7", lambda row: row[1] == 7),
        ("b <> 7", lambda row: row[1] != 7),
        ("c IS NULL", lambda row: row[2] is None),
        ("c IS NOT NULL", lambda row: row[2] is not None),
        ("c > 25", lambda row: row[2] is not None and row[2] > 25),
        ("d BETWEEN 20 AND 60",
         lambda row: 20 <= row[3] <= 60),
        ("b IN (1, 3, 5, 19)", lambda row: row[1] in (1, 3, 5, 19)),
        ("e LIKE 'g%'",
         lambda row: row[4] is not None and row[4].startswith("g")),
        ("e = 'red' OR b < 3",
         lambda row: row[4] == "red" or row[1] < 3),
        ("NOT b = 4 AND c <= 40",
         lambda row: row[1] != 4 and (row[2] is not None and row[2] <= 40)),
        ("b * 2 + 1 > 20", lambda row: row[1] * 2 + 1 > 20),
    ]

    @pytest.mark.parametrize("sql_pred,py_pred", PREDICATES,
                             ids=[p[0] for p in PREDICATES])
    def test_where(self, db, sql_pred, py_pred):
        conn, left, __ = db
        engine = run_engine(conn, "SELECT a FROM l WHERE " + sql_pred)
        reference = ref_sorted([(row[0],) for row in ref_filter(left, py_pred)])
        assert engine == reference


class TestJoinsDifferential:
    def test_inner_join(self, db):
        conn, left, right = db
        engine = run_engine(
            conn,
            "SELECT l.a, r.x FROM l JOIN r ON l.b = r.y WHERE l.d > 50",
        )
        reference = ref_sorted([
            (lrow[0], rrow[0])
            for lrow in left if lrow[3] > 50
            for rrow in right if lrow[1] == rrow[1]
        ])
        assert engine == reference

    def test_left_join_with_null_extension(self, db):
        conn, left, right = db
        engine = run_engine(
            conn,
            "SELECT l.a, r.x FROM l LEFT JOIN r "
            "ON l.b = r.y AND r.x < 10 WHERE l.a < 30",
        )
        reference = []
        for lrow in left:
            if not lrow[0] < 30:
                continue
            matches = [
                rrow for rrow in right
                if lrow[1] == rrow[1] and rrow[0] < 10
            ]
            if matches:
                reference.extend((lrow[0], rrow[0]) for rrow in matches)
            else:
                reference.append((lrow[0], None))
        assert engine == ref_sorted(reference)

    def test_semi_join_in_subquery(self, db):
        conn, left, right = db
        engine = run_engine(
            conn,
            "SELECT a FROM l WHERE b IN (SELECT y FROM r WHERE x < 8)",
        )
        keys = {rrow[1] for rrow in right if rrow[0] < 8}
        reference = ref_sorted([(row[0],) for row in left if row[1] in keys])
        assert engine == reference

    def test_anti_join_not_exists(self, db):
        conn, left, right = db
        engine = run_engine(
            conn,
            "SELECT x FROM r WHERE NOT EXISTS "
            "(SELECT 1 FROM l WHERE l.b = r.y AND l.d > 90)",
        )
        heavy = {lrow[1] for lrow in left if lrow[3] > 90}
        reference = ref_sorted([
            (rrow[0],) for rrow in right if rrow[1] not in heavy
        ])
        assert engine == reference

    def test_self_join(self, db):
        conn, left, __ = db
        engine = run_engine(
            conn,
            "SELECT p.a, q.a FROM l p, l q "
            "WHERE p.b = q.b AND p.a < q.a AND p.b = 3",
        )
        threes = [row for row in left if row[1] == 3]
        reference = ref_sorted([
            (p[0], q[0]) for p in threes for q in threes if p[0] < q[0]
        ])
        assert engine == reference


class TestAggregationDifferential:
    def test_group_by_count_sum(self, db):
        conn, left, __ = db
        engine = run_engine(
            conn, "SELECT b, COUNT(*), SUM(d) FROM l GROUP BY b"
        )
        reference = {}
        for row in left:
            entry = reference.setdefault(row[1], [0, 0.0])
            entry[0] += 1
            entry[1] += row[3]
        expected = ref_sorted([
            (key, count, pytest.approx(total))
            for key, (count, total) in reference.items()
        ])
        assert len(engine) == len(expected)
        for (gb, gc, gs), (rb, rc, rs) in zip(engine, expected):
            assert (gb, gc) == (rb, rc)
            assert gs == rs

    def test_count_skips_nulls(self, db):
        conn, left, __ = db
        engine = conn.execute("SELECT COUNT(c), COUNT(*) FROM l").rows[0]
        non_null = sum(1 for row in left if row[2] is not None)
        assert engine == (non_null, len(left))

    def test_count_distinct(self, db):
        conn, left, __ = db
        engine = conn.execute("SELECT COUNT(DISTINCT e) FROM l").rows[0][0]
        assert engine == len({row[4] for row in left if row[4] is not None})

    def test_min_max_avg(self, db):
        conn, left, __ = db
        engine = conn.execute(
            "SELECT MIN(d), MAX(d), AVG(d) FROM l WHERE b = 5"
        ).rows[0]
        values = [row[3] for row in left if row[1] == 5]
        assert engine[0] == min(values)
        assert engine[1] == max(values)
        assert engine[2] == pytest.approx(sum(values) / len(values))

    def test_having(self, db):
        conn, left, __ = db
        engine = run_engine(
            conn, "SELECT b FROM l GROUP BY b HAVING COUNT(*) >= 8"
        )
        counts = {}
        for row in left:
            counts[row[1]] = counts.get(row[1], 0) + 1
        reference = ref_sorted([
            (key,) for key, count in counts.items() if count >= 8
        ])
        assert engine == reference

    def test_group_by_join(self, db):
        conn, left, right = db
        engine = run_engine(
            conn,
            "SELECT r.z, COUNT(*) FROM l JOIN r ON l.b = r.y GROUP BY r.z",
        )
        counts = {}
        for lrow in left:
            for rrow in right:
                if lrow[1] == rrow[1]:
                    counts[rrow[2]] = counts.get(rrow[2], 0) + 1
        assert engine == ref_sorted(list(counts.items()))


class TestOrderingDifferential:
    def test_order_by_limit(self, db):
        conn, left, __ = db
        engine = conn.execute(
            "SELECT a, d FROM l ORDER BY d DESC, a ASC LIMIT 10"
        ).rows
        reference = sorted(
            [(row[0], row[3]) for row in left],
            key=lambda pair: (-pair[1], pair[0]),
        )[:10]
        assert engine == reference

    def test_distinct(self, db):
        conn, left, __ = db
        engine = run_engine(conn, "SELECT DISTINCT b FROM l")
        assert engine == ref_sorted([(b,) for b in {row[1] for row in left}])

    def test_order_by_nulls_first(self, db):
        conn, left, __ = db
        engine = conn.execute("SELECT c FROM l ORDER BY c LIMIT 5").rows
        n_nulls = sum(1 for row in left if row[2] is None)
        assert all(row[0] is None for row in engine[: min(5, n_nulls)])


class TestDmlDifferential:
    def test_update_then_verify(self, db):
        conn, left, __ = db
        conn.execute("BEGIN")
        conn.execute("UPDATE l SET d = d + 1000 WHERE b = 2")
        engine = conn.execute(
            "SELECT COUNT(*) FROM l WHERE d >= 1000"
        ).rows[0][0]
        reference = sum(1 for row in left if row[1] == 2)
        conn.execute("ROLLBACK")
        assert engine == reference
        # Rollback restored the original values.
        assert conn.execute(
            "SELECT COUNT(*) FROM l WHERE d >= 1000"
        ).rows[0][0] == 0
