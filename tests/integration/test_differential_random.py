"""Property-based differential testing with randomly generated predicates.

Hypothesis builds random boolean predicate trees over a fixed table; each
is rendered to SQL for the engine and to a Python closure for the
reference.  SQL three-valued logic is mirrored in the reference via
None-propagating operators.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Server, ServerConfig

ROWS = [
    (
        i,
        (i * 7) % 23,
        None if i % 9 == 0 else (i * 3) % 40,
        float((i * 13) % 97),
    )
    for i in range(150)
]


@pytest.fixture(scope="module")
def conn():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=512))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT, c INT, d DOUBLE)"
    )
    server.load_table("t", ROWS)
    return connection


# --------------------------------------------------------------------- #
# predicate tree generation: (sql_text, python_eval) pairs
# --------------------------------------------------------------------- #

_COLUMNS = {"a": 0, "b": 1, "c": 2, "d": 3}


def _tv_compare(op, left, right):
    """Three-valued comparison: None operands yield None."""
    if left is None or right is None:
        return None
    return {
        "=": left == right,
        "<>": left != right,
        "<": left < right,
        "<=": left <= right,
        ">": left > right,
        ">=": left >= right,
    }[op]


def _tv_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _tv_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _tv_not(a):
    return None if a is None else not a


@st.composite
def comparison(draw):
    column = draw(st.sampled_from(sorted(_COLUMNS)))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(st.integers(min_value=-5, max_value=100))
    index = _COLUMNS[column]
    sql = "%s %s %d" % (column, op, value)
    return sql, (lambda row, i=index, o=op, v=value: _tv_compare(o, row[i], v))


@st.composite
def null_check(draw):
    column = draw(st.sampled_from(sorted(_COLUMNS)))
    negated = draw(st.booleans())
    index = _COLUMNS[column]
    if negated:
        return (
            "%s IS NOT NULL" % column,
            lambda row, i=index: row[i] is not None,
        )
    return "%s IS NULL" % column, (lambda row, i=index: row[i] is None)


@st.composite
def between(draw):
    column = draw(st.sampled_from(sorted(_COLUMNS)))
    low = draw(st.integers(min_value=-5, max_value=60))
    width = draw(st.integers(min_value=0, max_value=50))
    index = _COLUMNS[column]
    sql = "%s BETWEEN %d AND %d" % (column, low, low + width)
    return sql, (
        lambda row, i=index, lo=low, hi=low + width:
        None if row[i] is None else lo <= row[i] <= hi
    )


@st.composite
def in_list(draw):
    column = draw(st.sampled_from(sorted(_COLUMNS)))
    values = draw(st.lists(st.integers(min_value=0, max_value=50),
                           min_size=1, max_size=5))
    index = _COLUMNS[column]
    sql = "%s IN (%s)" % (column, ", ".join(map(str, values)))
    return sql, (
        lambda row, i=index, vs=tuple(values):
        None if row[i] is None else row[i] in vs
    )


def leaf():
    return st.one_of(comparison(), null_check(), between(), in_list())


@st.composite
def predicate(draw, depth=2):
    if depth == 0:
        return draw(leaf())
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(leaf())
    if kind == "not":
        sql, fn = draw(predicate(depth=depth - 1))
        return "NOT (%s)" % sql, (lambda row, f=fn: _tv_not(f(row)))
    left_sql, left_fn = draw(predicate(depth=depth - 1))
    right_sql, right_fn = draw(predicate(depth=depth - 1))
    if kind == "and":
        return (
            "(%s) AND (%s)" % (left_sql, right_sql),
            lambda row, a=left_fn, b=right_fn: _tv_and(a(row), b(row)),
        )
    return (
        "(%s) OR (%s)" % (left_sql, right_sql),
        lambda row, a=left_fn, b=right_fn: _tv_or(a(row), b(row)),
    )


@settings(max_examples=60, deadline=None)
@given(predicate())
def test_random_predicates_match_reference(conn, pred):
    sql_pred, py_pred = pred
    engine = sorted(
        conn.execute("SELECT a FROM t WHERE " + sql_pred).rows
    )
    reference = sorted(
        (row[0],) for row in ROWS if py_pred(row) is True
    )
    assert engine == reference, "divergence on WHERE %s" % sql_pred


@settings(max_examples=25, deadline=None)
@given(predicate(), st.sampled_from(["a", "b", "c", "d"]))
def test_random_predicates_with_aggregation(conn, pred, group_column):
    sql_pred, py_pred = pred
    engine = sorted(
        conn.execute(
            "SELECT %s, COUNT(*) FROM t WHERE %s GROUP BY %s"
            % (group_column, sql_pred, group_column)
        ).rows,
        key=repr,
    )
    index = _COLUMNS[group_column]
    counts = {}
    for row in ROWS:
        if py_pred(row) is True:
            counts[row[index]] = counts.get(row[index], 0) + 1
    reference = sorted(counts.items(), key=repr)
    assert engine == reference, "divergence on GROUP BY with WHERE %s" % sql_pred
