"""EXPLAIN ANALYZE end-to-end: actuals must match real cardinalities.

A three-way join sized so that hash-join work memory blows past the
memory governor's per-task soft limit, forcing spills — the annotated
plan must report per-operator actual row counts that agree with the
query's arithmetic, and the spills must show up in both the plan
annotations and the server metrics.
"""

import pytest

from repro import Server, ServerConfig
from repro.optimizer import plans as p

# r.b = i % 100 for i in 0..299: every b value appears 3 times.
R_ROWS = 300
# s.b = i % 100, s.c = i % 50 for i in 0..199: every (b, c) from 2 rows.
S_ROWS = 200
# t.c = i % 50 for i in 0..99: every c value appears 2 times.
T_ROWS = 100
# |r >< s on b| = 200 * 3; each joined row then matches 2 t rows.
RS_ROWS = S_ROWS * 3
FINAL_ROWS = RS_ROWS * 2


@pytest.fixture
def server():
    # 128-page pool across 64 concurrent-task slots: a ~2-page per-task
    # soft limit, so the hash joins must spill their build partitions.
    instance = Server(ServerConfig(
        initial_pool_pages=128,
        multiprogramming_level=64,
        start_buffer_governor=False,
    ))
    conn = instance.connect()
    conn.execute("CREATE TABLE r (id INT, b INT, PRIMARY KEY (id))")
    conn.execute("CREATE TABLE s (id INT, b INT, c INT, PRIMARY KEY (id))")
    conn.execute("CREATE TABLE t (id INT, c INT, d INT, PRIMARY KEY (id))")
    instance.load_table("r", [(i, i % 100) for i in range(R_ROWS)])
    instance.load_table("s", [(i, i % 100, i % 50) for i in range(S_ROWS)])
    instance.load_table("t", [(i, i % 50, i) for i in range(T_ROWS)])
    yield instance, conn
    conn.close()


JOIN_SQL = (
    "SELECT r.id, s.id, t.d FROM r, s, t "
    "WHERE r.b = s.b AND s.c = t.c"
)


def scan_nodes(plan):
    return [
        node for node in plan.walk()
        if isinstance(node, (p.SeqScanPlan, p.IndexScanPlan))
    ]


class TestExplainAnalyze:
    def test_actual_rows_match_real_cardinalities(self, server):
        instance, conn = server
        result = conn.execute(JOIN_SQL)
        assert len(result.rows) == FINAL_ROWS

        collector = result.exec_stats
        plan = result.plan_result.plan
        # The root operator's actuals equal the result cardinality.
        root = collector.lookup(plan)
        assert root.rows_out == FINAL_ROWS
        # Every base-table scan produced exactly its table's rows.
        expected_by_alias = {"r": R_ROWS, "s": S_ROWS, "t": T_ROWS}
        seen = {}
        for node in scan_nodes(plan):
            stats = collector.lookup(node)
            seen[node.quantifier.alias] = stats.rows_out
        assert seen == expected_by_alias
        # rows_in is derived from the children: the root consumes what
        # its single child (the top join) produced.
        child_rows = sum(
            collector.lookup(c).rows_out for c in plan.children
        )
        assert collector.rows_into(plan) == child_rows

    def test_joins_spill_and_report_it(self, server):
        instance, conn = server
        result = conn.execute(JOIN_SQL)
        total_spills = sum(
            collector_stats.spill_events
            for collector_stats in (
                result.exec_stats.lookup(node)
                for node in result.plan_result.plan.walk()
            )
            if collector_stats is not None
        )
        assert total_spills >= 1
        snap = instance.metrics.snapshot()
        assert snap["exec.spill_events"] >= 1

    def test_rendered_text_carries_estimates_and_actuals(self, server):
        instance, conn = server
        result = conn.execute(JOIN_SQL)
        text = result.explain(analyze=True)
        lines = text.splitlines()
        # Every line pairs the optimizer's estimate with the actuals.
        assert all("(rows=" in line for line in lines)
        assert all(
            "[actual" in line or "[never executed]" in line
            for line in lines
        )
        assert ("actual rows=%d" % FINAL_ROWS) in lines[0]
        assert "spills=" in text
        # elapsed must be populated: the join did simulated work.
        root = result.exec_stats.lookup(result.plan_result.plan)
        assert root.elapsed_us > 0
        assert root.pages_touched > 0
        # Plain EXPLAIN still renders the estimate-only tree.
        assert "[actual" not in result.explain()

    def test_cursor_explain_analyze_tracks_fetch_progress(self, server):
        instance, conn = server
        cursor = conn.open_cursor("SELECT id FROM r")
        cursor.fetchmany(10)
        partial = cursor.explain(analyze=True)
        assert "actual rows=10" in partial.splitlines()[0]
        cursor.fetchall()
        done = cursor.explain(analyze=True)
        assert ("actual rows=%d" % R_ROWS) in done.splitlines()[0]
        cursor.close()

    def test_never_executed_branch_is_labelled(self, server):
        instance, conn = server
        result = conn.execute(
            "SELECT id FROM r WHERE b = 1 AND b = 2"
        )
        assert result.rows == []
        text = result.explain(analyze=True)
        assert "[actual" in text  # the tree did start executing
