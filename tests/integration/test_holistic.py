"""The paper's thesis test: the self-management features work *in concert*.

"It is important to note that these technologies work in concert to offer
the level of self-management and adaptiveness that embedded application
software requires.  It is, in our view, impossible to achieve effective
self-management by considering these technologies in isolation."

One scenario on one memory-squeezed simulated machine exercises, at the
same time: the buffer-pool governor reacting to a competing process,
statistics feedback refining estimates, the plan cache training on
procedure calls, adaptive memory-governed operators spilling, interleaved
cursors with stealable heaps, DML with transactions, and a crash with
log-based recovery at the end — all while every query keeps returning
correct answers.
"""

import pytest

from repro import Server, ServerConfig
from repro.buffer import GovernorConfig
from repro.common import MiB, MINUTE
from repro.engine import FiberScheduler


@pytest.fixture(scope="module")
def world():
    server = Server(ServerConfig(
        total_memory=64 * MiB,
        initial_pool_pages=512,       # 2 MiB
        multiprogramming_level=8,
        adaptive_mpl=True,
        governor=GovernorConfig(upper_bound_bytes=48 * MiB,
                                lower_bound_bytes=1 * MiB),
        start_buffer_governor=False,  # polled manually for determinism
    ))
    conn = server.connect()
    conn.execute(
        "CREATE TABLE account (id INT PRIMARY KEY, branch INT, "
        "balance DOUBLE, pad VARCHAR(40))"
    )
    conn.execute(
        "CREATE TABLE branch (id INT PRIMARY KEY, region VARCHAR(12))"
    )
    server.load_table(
        "account",
        [(i, i % 40, float(1000 + i % 500), "pad-%024d" % i)
         for i in range(20000)],
    )
    server.load_table("branch", [(i, "region-%d" % (i % 4)) for i in range(40)])
    conn.execute(
        "CREATE PROCEDURE branch_report(b) AS "
        "SELECT COUNT(*), SUM(a.balance) FROM account a, branch br "
        "WHERE a.branch = br.id AND br.id = b"
    )
    competitor = server.os.spawn("co-resident-app")
    return server, conn, competitor


def test_holistic_day_in_the_life(world):
    server, conn, competitor = world
    governor = server.buffer_governor

    # --- Phase 1: morning OLTP under a quiet machine -------------------- #
    for minute in range(5):
        for i in range(20):
            key = (minute * 37 + i * 13) % 20000
            conn.execute(
                "SELECT balance FROM account WHERE id = %d" % key
            )
            conn.execute(
                "UPDATE account SET balance = balance + 1 WHERE id = %d" % key
            )
        conn.execute("CALL branch_report(%d)" % (minute % 40))
        governor.poll_once()
        server.clock.advance(1 * MINUTE)
    pool_quiet = server.pool.size_bytes()
    assert pool_quiet > 2 * MiB  # the governor grew into free memory

    # --- Phase 2: a co-resident app squeezes the machine ----------------- #
    # Hard squeeze: free memory must fall below what even the eq. (1)
    # db-size-capped pool occupies.
    competitor.set_allocation(54 * MiB)
    report_answers = []
    for minute in range(5):
        result = conn.execute(
            "SELECT br.region, COUNT(*), SUM(a.balance) FROM account a "
            "JOIN branch br ON a.branch = br.id GROUP BY br.region "
            "ORDER BY br.region"
        )
        assert len(result) == 4  # the big aggregation stays correct
        report_answers.append(result.rows)
        governor.poll_once()
        server.clock.advance(1 * MINUTE)
    pool_squeezed = server.pool.size_bytes()
    assert pool_squeezed < pool_quiet  # the pool yielded memory
    # Identical answers under memory pressure (modulo the OLTP updates
    # having stopped): the last two reporting runs saw identical data.
    assert report_answers[-1] == report_answers[-2]

    # --- Phase 3: interleaved cursors while still squeezed --------------- #
    scheduler = FiberScheduler(batch_size=16)
    scheduler.add("sweep", conn.open_cursor(
        "SELECT id FROM account WHERE balance > 1400 ORDER BY id"
    ))
    scheduler.add("branches", conn.open_cursor(
        "SELECT id FROM branch ORDER BY id"
    ))
    results = scheduler.run()
    assert results["branches"] == [(i,) for i in range(40)]
    assert results["sweep"] == sorted(results["sweep"])

    # --- Phase 4: the plan cache has trained on the procedure ------------ #
    for i in range(10):
        conn.execute("CALL branch_report(%d)" % (i % 40))
    assert conn.plan_cache.is_cached("proc:branch_report")
    assert conn.plan_cache.hits > 0

    # --- Phase 5: statistics feedback refined the histograms ------------- #
    # Point lookups went through the PK index; the reporting cursor's
    # ``balance > 1400`` sweep is the scan that fed the histogram.
    histogram = server.stats.histogram("account", 2)
    assert histogram is not None and histogram.feedback_updates > 0

    # --- Phase 6: pressure lifts; the pool recovers ----------------------- #
    competitor.set_allocation(0)
    for __ in range(4):
        conn.execute("SELECT COUNT(*) FROM account WHERE branch = 7")
        governor.poll_once()
        server.clock.advance(1 * MINUTE)
    assert server.pool.size_bytes() > pool_squeezed

    # --- Phase 7: transactional work, a crash, and recovery --------------- #
    conn.execute("BEGIN")
    conn.execute("UPDATE account SET balance = 0 WHERE id = 0")
    conn.execute("COMMIT")
    conn.execute("BEGIN")
    conn.execute("UPDATE account SET balance = -1 WHERE id = 1")
    conn._txn_id = None  # the in-flight transaction dies with the crash
    balance_before = conn.execute(
        "SELECT COUNT(*), SUM(balance) FROM account WHERE id > 1"
    ).rows
    server.simulate_crash_and_recover()
    assert conn.execute(
        "SELECT balance FROM account WHERE id = 0"
    ).rows == [(0.0,)]                       # committed change survived
    assert conn.execute(
        "SELECT balance FROM account WHERE id = 1"
    ).rows[0][0] > 0                         # uncommitted change lost
    assert conn.execute(
        "SELECT COUNT(*), SUM(balance) FROM account WHERE id > 1"
    ).rows == balance_before                 # everything else intact

    # The whole day ran on one simulated machine without manual tuning.
    assert server.statements_executed > 200
