"""Long string columns end-to-end (paper Sections 2.1 and 3.1).

"These techniques allow SQL Anywhere to eliminate restrictions on what
data types can be indexed" — LONG VARCHAR columns index and query like
any other type; and their statistics flow through the separate
predicate/word-bucket infrastructure rather than value histograms.
"""

import pytest

from repro import Server, ServerConfig


@pytest.fixture
def conn():
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE doc (id INT PRIMARY KEY, body LONG VARCHAR)"
    )
    rows = []
    for i in range(300):
        topic = ["shipping delayed", "payment received",
                 "card declined", "refund issued"][i % 4]
        rows.append((i, "ticket %d: %s for order %d" % (i, topic, i * 7)))
    server.load_table("doc", rows)
    return connection


def test_long_varchar_round_trips(conn):
    result = conn.execute("SELECT body FROM doc WHERE id = 5")
    assert result.rows == [("ticket 5: payment received for order 35",)]


def test_long_varchar_is_indexable(conn):
    """No restriction on indexable types: a LONG VARCHAR index works."""
    conn.execute("CREATE INDEX doc_body ON doc (body)")
    needle = "ticket 5: payment received for order 35"
    result = conn.execute("SELECT id FROM doc WHERE body = '%s'" % needle)
    assert result.rows == [(5,)]
    # The optimizer can actually pick that index for equality probes.
    assert "doc_body" in result.explain() or "SeqScan" in result.explain()


def test_like_word_queries(conn):
    result = conn.execute("SELECT COUNT(*) FROM doc WHERE body LIKE '%declined%'")
    assert result.rows == [(75,)]


def test_string_infrastructure_not_histograms(conn):
    server = conn.server
    stats = server.stats.column_stats("doc", 1)
    assert stats is not None
    assert stats.uses_string_infrastructure
    assert stats.histogram is None
    assert stats.string_stats is not None
    # Words from the loaded values seeded the word buckets.
    assert stats.string_stats.word_bucket_count > 0


def test_like_feedback_reaches_word_buckets(conn):
    server = conn.server
    conn.execute("SELECT COUNT(*) FROM doc WHERE body LIKE '%declined%'")
    string_stats = server.stats.string_stats("doc", 1)
    estimate = string_stats.estimate_like("%declined%")
    assert estimate == pytest.approx(0.25, abs=0.03)
    # And the learned word generalizes to new patterns using it.
    assert string_stats.estimate_like("%card declined%") == pytest.approx(
        0.25, abs=0.05
    )


def test_wide_varchar_also_uses_string_infra(conn):
    conn.execute("CREATE TABLE note (id INT PRIMARY KEY, txt VARCHAR(500))")
    conn.server.load_table("note", [(1, "x" * 200)])
    stats = conn.server.stats.column_stats("note", 1)
    assert stats.uses_string_infrastructure
