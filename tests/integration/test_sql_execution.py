"""End-to-end SQL correctness tests through the full engine stack."""

import pytest

from repro import Server, ServerConfig
from repro.common.errors import ExecutionError, ReproError


@pytest.fixture
def conn():
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE dept (id INT PRIMARY KEY, dname VARCHAR(30), budget DOUBLE)"
    )
    connection.execute(
        "CREATE TABLE emp ("
        "id INT PRIMARY KEY, name VARCHAR(30), dept_id INT, salary DOUBLE, "
        "hired DATE, FOREIGN KEY (dept_id) REFERENCES dept (id))"
    )
    connection.execute(
        "INSERT INTO dept VALUES "
        "(1, 'engineering', 1000.0), (2, 'sales', 500.0), (3, 'empty', 10.0)"
    )
    connection.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 1, 120.0, DATE '2001-05-01'), "
        "(2, 'bob', 1, 100.0, DATE '2002-06-01'), "
        "(3, 'cher', 2, 90.0, DATE '2003-07-01'), "
        "(4, 'dan', 2, 80.0, DATE '2004-08-01'), "
        "(5, 'eve', NULL, 70.0, NULL)"
    )
    yield connection
    connection.close()


def rows(result):
    return sorted(result.rows)


class TestBasicSelect:
    def test_select_star(self, conn):
        assert len(conn.execute("SELECT * FROM emp")) == 5

    def test_projection(self, conn):
        result = conn.execute("SELECT name, salary FROM emp WHERE id = 3")
        assert result.rows == [("cher", 90.0)]

    def test_where_range(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE salary >= 100")
        assert rows(result) == [("ann",), ("bob",)]

    def test_between(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE salary BETWEEN 80 AND 90")
        assert rows(result) == [("cher",), ("dan",)]

    def test_in_list(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE id IN (1, 4)")
        assert rows(result) == [("ann",), ("dan",)]

    def test_like(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE name LIKE '%a%'")
        assert rows(result) == [("ann",), ("dan",)]

    def test_is_null(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE dept_id IS NULL")
        assert result.rows == [("eve",)]

    def test_is_not_null(self, conn):
        assert len(conn.execute("SELECT 1 FROM emp WHERE dept_id IS NOT NULL")) == 4

    def test_null_comparison_excludes(self, conn):
        # eve's NULL dept_id matches neither = 1 nor <> 1.
        eq = conn.execute("SELECT 1 FROM emp WHERE dept_id = 1")
        ne = conn.execute("SELECT 1 FROM emp WHERE dept_id <> 1")
        assert len(eq) + len(ne) == 4

    def test_arithmetic(self, conn):
        result = conn.execute("SELECT salary * 2 + 1 FROM emp WHERE id = 1")
        assert result.rows == [(241.0,)]

    def test_date_compare(self, conn):
        result = conn.execute(
            "SELECT name FROM emp WHERE hired < DATE '2003-01-01'"
        )
        assert rows(result) == [("ann",), ("bob",)]

    def test_order_by(self, conn):
        result = conn.execute("SELECT name FROM emp ORDER BY salary DESC")
        assert result.rows == [("ann",), ("bob",), ("cher",), ("dan",), ("eve",)]

    def test_order_by_nulls(self, conn):
        result = conn.execute("SELECT name FROM emp ORDER BY hired")
        assert result.rows[0] == ("eve",)  # NULLs first ascending

    def test_limit(self, conn):
        result = conn.execute("SELECT name FROM emp ORDER BY id LIMIT 2")
        assert result.rows == [("ann",), ("bob",)]

    def test_distinct(self, conn):
        result = conn.execute("SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL")
        assert rows(result) == [(1,), (2,)]

    def test_select_without_from(self, conn):
        assert conn.execute("SELECT 1 + 2").rows == [(3,)]

    def test_case_expression(self, conn):
        result = conn.execute(
            "SELECT name, CASE WHEN salary >= 100 THEN 'high' ELSE 'low' END "
            "FROM emp WHERE id <= 2 ORDER BY id"
        )
        assert result.rows == [("ann", "high"), ("bob", "high")]

    def test_parameters(self, conn):
        result = conn.execute("SELECT name FROM emp WHERE id = ?", params=[4])
        assert result.rows == [("dan",)]

    def test_column_metadata(self, conn):
        result = conn.execute("SELECT name, salary FROM emp")
        assert result.columns == [("name", "VARCHAR"), ("salary", "DOUBLE")]


class TestJoins:
    def test_inner_join(self, conn):
        result = conn.execute(
            "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE d.dname = 'sales'"
        )
        assert rows(result) == [("cher", "sales"), ("dan", "sales")]

    def test_comma_join(self, conn):
        result = conn.execute(
            "SELECT e.name FROM emp e, dept d "
            "WHERE e.dept_id = d.id AND d.budget > 600"
        )
        assert rows(result) == [("ann",), ("bob",)]

    def test_left_outer_join(self, conn):
        result = conn.execute(
            "SELECT e.name, d.dname FROM emp e "
            "LEFT OUTER JOIN dept d ON e.dept_id = d.id"
        )
        assert len(result) == 5
        by_name = dict(result.rows)
        assert by_name["eve"] is None

    def test_left_join_preserves_unmatched_dept(self, conn):
        result = conn.execute(
            "SELECT d.dname, e.name FROM dept d "
            "LEFT JOIN emp e ON e.dept_id = d.id"
        )
        names = {row[0] for row in result.rows}
        assert "empty" in names
        assert len(result) == 5  # 4 matched + 1 null-extended

    def test_three_way_join(self, conn):
        conn.execute("CREATE TABLE loc (dept_id INT, city VARCHAR(20))")
        conn.execute("INSERT INTO loc VALUES (1, 'waterloo'), (2, 'dublin')")
        result = conn.execute(
            "SELECT e.name, l.city FROM emp e "
            "JOIN dept d ON e.dept_id = d.id "
            "JOIN loc l ON l.dept_id = d.id WHERE e.salary > 100"
        )
        assert result.rows == [("ann", "waterloo")]

    def test_cross_join(self, conn):
        result = conn.execute("SELECT 1 FROM dept CROSS JOIN dept d2")
        assert len(result) == 9

    def test_self_join(self, conn):
        result = conn.execute(
            "SELECT a.name, b.name FROM emp a, emp b "
            "WHERE a.dept_id = b.dept_id AND a.id < b.id"
        )
        assert rows(result) == [("ann", "bob"), ("cher", "dan")]


class TestSubqueries:
    def test_in_subquery(self, conn):
        result = conn.execute(
            "SELECT name FROM emp WHERE dept_id IN "
            "(SELECT id FROM dept WHERE budget > 600)"
        )
        assert rows(result) == [("ann",), ("bob",)]

    def test_not_in_subquery(self, conn):
        result = conn.execute(
            "SELECT name FROM emp WHERE dept_id NOT IN "
            "(SELECT id FROM dept WHERE budget > 600)"
        )
        # NULL dept_id: NULL NOT IN (...) is unknown -> excluded... but our
        # anti-join emits rows with no match; eve has no match on the key.
        assert ("cher",) in result.rows and ("dan",) in result.rows

    def test_exists_correlated(self, conn):
        result = conn.execute(
            "SELECT dname FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)"
        )
        assert rows(result) == [("engineering",), ("sales",)]

    def test_not_exists(self, conn):
        result = conn.execute(
            "SELECT dname FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)"
        )
        assert result.rows == [("empty",)]

    def test_derived_table(self, conn):
        result = conn.execute(
            "SELECT t.name FROM "
            "(SELECT name, salary FROM emp WHERE salary > 85) AS t "
            "WHERE t.salary < 110"
        )
        assert rows(result) == [("bob",), ("cher",)]


class TestAggregation:
    def test_count_star(self, conn):
        assert conn.execute("SELECT COUNT(*) FROM emp").rows == [(5,)]

    def test_count_column_skips_nulls(self, conn):
        assert conn.execute("SELECT COUNT(dept_id) FROM emp").rows == [(4,)]

    def test_count_distinct(self, conn):
        assert conn.execute("SELECT COUNT(DISTINCT dept_id) FROM emp").rows == [(2,)]

    def test_sum_avg_min_max(self, conn):
        result = conn.execute(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        )
        assert result.rows == [(460.0, 92.0, 70.0, 120.0)]

    def test_group_by(self, conn):
        result = conn.execute(
            "SELECT dept_id, COUNT(*), SUM(salary) FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id ORDER BY dept_id"
        )
        assert result.rows == [(1, 2, 220.0), (2, 2, 170.0)]

    def test_group_by_having(self, conn):
        result = conn.execute(
            "SELECT dept_id FROM emp GROUP BY dept_id HAVING AVG(salary) > 100"
        )
        assert result.rows == [(1,)]

    def test_aggregate_empty_input(self, conn):
        result = conn.execute("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_group_by_expression_key(self, conn):
        result = conn.execute(
            "SELECT salary / 100, COUNT(*) FROM emp GROUP BY salary / 100 "
            "ORDER BY salary / 100"
        )
        assert len(result.rows) == 5  # every salary/100 key is distinct
        assert result.rows[0] == (0.7, 1)

    def test_aggregate_with_join(self, conn):
        result = conn.execute(
            "SELECT d.dname, COUNT(*) FROM emp e JOIN dept d "
            "ON e.dept_id = d.id GROUP BY d.dname ORDER BY d.dname"
        )
        assert result.rows == [("engineering", 2), ("sales", 2)]


class TestRecursive:
    def test_recursive_sequence(self, conn):
        result = conn.execute(
            "WITH RECURSIVE seq(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM seq WHERE n < 5"
            ") SELECT n FROM seq ORDER BY n"
        )
        assert result.rows == [(1,), (2,), (3,), (4,), (5,)]
        assert result.notes.get("recursive_iterations", 0) >= 4

    def test_recursive_hierarchy(self, conn):
        conn.execute("CREATE TABLE mgr (emp_id INT, boss_id INT)")
        conn.execute(
            "INSERT INTO mgr VALUES (2, 1), (3, 1), (4, 2), (5, 4)"
        )
        result = conn.execute(
            "WITH RECURSIVE chain(emp_id) AS ("
            "SELECT emp_id FROM mgr WHERE boss_id = 1 "
            "UNION ALL "
            "SELECT m.emp_id FROM mgr m, chain c WHERE m.boss_id = c.emp_id"
            ") SELECT emp_id FROM chain ORDER BY emp_id"
        )
        assert result.rows == [(2,), (3,), (4,), (5,)]


class TestDml:
    def test_update(self, conn):
        count = conn.execute("UPDATE emp SET salary = salary + 10 WHERE dept_id = 2")
        assert count.rowcount == 2
        result = conn.execute("SELECT salary FROM emp WHERE id = 3")
        assert result.rows == [(100.0,)]

    def test_delete(self, conn):
        assert conn.execute("DELETE FROM emp WHERE salary < 80").rowcount == 1
        assert conn.execute("SELECT COUNT(*) FROM emp").rows == [(4,)]

    def test_insert_select(self, conn):
        conn.execute("CREATE TABLE rich (id INT, name VARCHAR(30))")
        conn.execute(
            "INSERT INTO rich SELECT id, name FROM emp WHERE salary > 95"
        )
        assert len(conn.execute("SELECT * FROM rich")) == 2

    def test_update_via_pk_index_bypasses_optimizer(self, conn):
        conn.execute("UPDATE emp SET salary = 999 WHERE id = 1")
        assert conn.last_plan.bypassed
        assert conn.execute("SELECT salary FROM emp WHERE id = 1").rows == [(999.0,)]

    def test_unique_violation(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("INSERT INTO emp VALUES (1, 'dup', 1, 1.0, NULL)")

    def test_not_null_violation(self, conn):
        with pytest.raises(ReproError):
            conn.execute("INSERT INTO dept VALUES (NULL, 'x', 0.0)")

    def test_index_maintained_by_dml(self, conn):
        conn.execute("CREATE INDEX emp_salary ON emp (salary)")
        conn.execute("UPDATE emp SET salary = 5000 WHERE id = 2")
        result = conn.execute("SELECT name FROM emp WHERE salary = 5000")
        assert result.rows == [("bob",)]


class TestTransactions:
    def test_commit_persists(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO dept VALUES (9, 'ops', 1.0)")
        conn.execute("COMMIT")
        assert len(conn.execute("SELECT 1 FROM dept WHERE id = 9")) == 1

    def test_rollback_insert(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO dept VALUES (9, 'ops', 1.0)")
        conn.execute("ROLLBACK")
        assert len(conn.execute("SELECT 1 FROM dept WHERE id = 9")) == 0

    def test_rollback_update(self, conn):
        conn.execute("BEGIN")
        conn.execute("UPDATE emp SET salary = 0 WHERE id = 1")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT salary FROM emp WHERE id = 1").rows == [(120.0,)]

    def test_rollback_delete_restores_rows(self, conn):
        conn.execute("BEGIN")
        conn.execute("DELETE FROM emp WHERE dept_id = 1")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM emp").rows == [(5,)]

    def test_rollback_restores_index_consistency(self, conn):
        conn.execute("BEGIN")
        conn.execute("DELETE FROM emp WHERE id = 1")
        conn.execute("ROLLBACK")
        result = conn.execute("SELECT name FROM emp WHERE id = 1")
        assert result.rows == [("ann",)]


class TestProcedures:
    def test_create_and_call(self, conn):
        conn.execute(
            "CREATE PROCEDURE high_paid(threshold) AS "
            "SELECT name FROM emp WHERE salary > threshold"
        )
        result = conn.execute("CALL high_paid(95)")
        assert rows(result) == [("ann",), ("bob",)]

    def test_procedure_in_from(self, conn):
        conn.execute(
            "CREATE PROCEDURE eng_emps() AS "
            "SELECT id, name FROM emp WHERE dept_id = 1"
        )
        result = conn.execute("SELECT p.name FROM eng_emps() AS p")
        assert rows(result) == [("ann",), ("bob",)]

    def test_procedure_stats_recorded(self, conn):
        conn.execute(
            "CREATE PROCEDURE everyone() AS SELECT id, name FROM emp"
        )
        conn.execute("SELECT p.name FROM everyone() AS p")
        stats = conn.server.stats.procedure_stats("everyone")
        assert stats.invocations == 1
        __, cardinality = stats.estimate()
        assert cardinality == 5

    def test_call_populates_plan_cache(self, conn):
        conn.execute(
            "CREATE PROCEDURE count_emp() AS SELECT COUNT(*) FROM emp"
        )
        for __ in range(5):
            conn.execute("CALL count_emp()")
        assert conn.plan_cache.is_cached("proc:count_emp")


class TestLifecycle:
    def test_server_autostarts_and_stops(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        assert not server.running
        conn = server.connect()
        assert server.running
        conn.close()
        assert not server.running  # last connection closed

    def test_closed_connection_rejects(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        conn = server.connect()
        conn.close()
        with pytest.raises(ExecutionError):
            conn.execute("SELECT 1")

    def test_multiple_connections(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        a = server.connect()
        b = server.connect()
        a.close()
        assert server.running
        b.close()
        assert not server.running


class TestExplain:
    def test_plan_available(self, conn):
        result = conn.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        explained = result.explain()
        assert "Join" in explained or "Scan" in explained

    def test_time_advances_with_work(self, conn):
        before = conn.server.clock.now
        conn.execute("SELECT * FROM emp, dept")
        assert conn.server.clock.now > before
