"""Unit tests for the DTT-based cost model."""

import pytest

from repro.common import KiB
from repro.dtt import default_dtt_model
from repro.optimizer import CostModel, CostModelContext


@pytest.fixture
def model():
    context = CostModelContext(
        default_dtt_model(), page_size=4 * KiB, pool_pages=256,
        soft_limit_pages=64,
    )
    return CostModel(context)


class TestScans:
    def test_resident_scan_has_no_io(self, model):
        hot = model.seq_scan(100, 1000, 0, resident_fraction=1.0)
        cold = model.seq_scan(100, 1000, 0, resident_fraction=0.0)
        assert hot < cold

    def test_scan_scales_with_pages(self, model):
        small = model.seq_scan(10, 100, 0, 0.0)
        large = model.seq_scan(1000, 10_000, 0, 0.0)
        assert large > 10 * small

    def test_predicates_add_cpu(self, model):
        plain = model.seq_scan(10, 1000, 0, 1.0)
        filtered = model.seq_scan(10, 1000, 3, 1.0)
        assert filtered > plain

    def test_selective_index_beats_scan(self, model):
        # 0.1% of a large table via a well-clustered index vs full scan.
        scan = model.seq_scan(5000, 500_000, 1, 0.0)
        index = model.index_scan(
            index_height=3, index_leaf_pages=500, table_pages=5000,
            matching_rows=500, clustering_fraction=0.9,
            resident_fraction=0.0,
        )
        assert index < scan

    def test_unselective_index_loses_to_scan(self, model):
        # Fetching 80% of rows through an unclustered index thrashes.
        scan = model.seq_scan(5000, 500_000, 1, 0.0)
        index = model.index_scan(
            index_height=3, index_leaf_pages=500, table_pages=5000,
            matching_rows=400_000, clustering_fraction=0.0,
            resident_fraction=0.0,
        )
        assert index > scan

    def test_clustering_reduces_fetch_cost(self, model):
        clustered = model.row_fetches(10_000, 5000, 0.95, 0.0)
        scattered = model.row_fetches(10_000, 5000, 0.05, 0.0)
        assert clustered < scattered


class TestJoins:
    def test_hash_join_in_memory_is_cpu_only(self, model):
        fits = model.hash_join(
            build_rows=100, probe_rows=1000, build_row_bytes=40,
            memory_pages=64, output_rows=1000,
        )
        # All CPU: well under a single random I/O.
        assert fits < model.ctx.read_us(1000) * 5

    def test_hash_join_spills_past_quota(self, model):
        fits = model.hash_join(10_000, 10_000, 40, memory_pages=1000,
                               output_rows=10_000)
        spills = model.hash_join(10_000, 10_000, 40, memory_pages=10,
                                 output_rows=10_000)
        assert spills > fits

    def test_nlj_scales_with_outer(self, model):
        narrow = model.nested_loop_join(10, 500.0, 1, 100)
        wide = model.nested_loop_join(10_000, 500.0, 1, 100)
        assert wide > 100 * narrow

    def test_index_nl_join_beats_nlj_for_selective_probes(self, model):
        cold = model.index_probe(3, 100, 1000, 1.0, 0.9, 0.5)
        warm = model.index_probe(3, 100, 1000, 1.0, 0.9, 1.0)
        inner_scan = model.seq_scan(1000, 100_000, 1, 0.5)
        inlj = model.index_nl_join(1000, cold, warm, warmup_pages=550,
                                   output_rows=1000)
        nlj = model.nested_loop_join(1000, inner_scan, 1, 1000)
        assert inlj < nlj

    def test_index_nl_join_saturates_after_warmup(self, model):
        cold = model.index_probe(3, 100, 1000, 1.0, 0.9, 0.0)
        warm = model.index_probe(3, 100, 1000, 1.0, 0.9, 1.0)
        few = model.index_nl_join(100, cold, warm, warmup_pages=1100,
                                  output_rows=100)
        many = model.index_nl_join(10_000, cold, warm, warmup_pages=1100,
                                   output_rows=10_000)
        # The first ~1100 probes are cold; the rest run at warm cost, so
        # 100x the probes costs far less than 100x the price.
        assert many < few * 100
        assert warm < cold


class TestMemoryIntensive:
    def test_sort_external_costs_more(self, model):
        in_memory = model.sort(10_000, 64, memory_pages=1000)
        external = model.sort(10_000, 64, memory_pages=4)
        assert external > in_memory

    def test_group_by_spill(self, model):
        fits = model.hash_group_by(100_000, 100, 32, memory_pages=64)
        spills = model.hash_group_by(100_000, 500_000, 32, memory_pages=4)
        assert spills > fits

    def test_sort_of_single_row_trivial(self, model):
        assert model.sort(1, 64, 10) < 1.0


class TestContext:
    def test_optimistic_half_pool(self, model):
        # A table half the pool size is considered fully buffered.
        assert model.ctx.optimistic_resident_fraction(100) == 1.0
        # A huge table gets pool/2 of its pages.
        assert model.ctx.optimistic_resident_fraction(1280) == pytest.approx(0.1)

    def test_read_write_shortcuts(self, model):
        assert model.ctx.read_us(1) < model.ctx.read_us(1000)
        assert model.ctx.write_us(1000) < model.ctx.read_us(1000)
