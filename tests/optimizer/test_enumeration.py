"""Unit tests for enumeration internals (governor, improvement events)."""

import math

import pytest

from repro.optimizer.enumeration import (
    EnumerationStats,
    JoinEnumerator,
    OptimizerGovernor,
    REDISTRIBUTION_IMPROVEMENT,
)


class TestGovernorQuota:
    def test_governor_halves(self):
        governor = OptimizerGovernor(1000, mode="governor")
        assert governor.child_quota(1000, 0) == 500
        assert governor.child_quota(500, 1) == 250

    def test_fifo_hands_everything(self):
        governor = OptimizerGovernor(1000, mode="fifo")
        assert governor.child_quota(1000, 0) == 1000

    def test_minimum_one(self):
        governor = OptimizerGovernor(10, mode="governor")
        assert governor.child_quota(1, 5) == 1

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            OptimizerGovernor(10, mode="random")


class TestImprovementDetection:
    def make_enum(self):
        class Block:
            quantifiers = []
            conjuncts = []

        return JoinEnumerator.__new__(JoinEnumerator), Block()

    def test_twenty_percent_improvement_triggers_redistribution(self):
        enum, block = self.make_enum()
        enum.block = block
        enum.stats = EnumerationStats()
        enum._best_steps = None
        enum._best_cost = math.inf
        enum._redistribute_requested = False
        enum._complete(["plan-a"], 1000.0)
        assert enum.stats.improvements == 0  # first plan: no event
        enum._complete(["plan-b"], 1000.0 * (1 - REDISTRIBUTION_IMPROVEMENT))
        assert enum.stats.improvements == 1
        assert enum._redistribute_requested

    def test_small_improvement_updates_best_quietly(self):
        enum, block = self.make_enum()
        enum.block = block
        enum.stats = EnumerationStats()
        enum._best_steps = None
        enum._best_cost = math.inf
        enum._redistribute_requested = False
        enum._complete(["plan-a"], 1000.0)
        enum._complete(["plan-b"], 950.0)  # only 5% better
        assert enum._best_cost == 950.0
        assert enum.stats.improvements == 0
        assert not enum._redistribute_requested

    def test_worse_plan_ignored(self):
        enum, block = self.make_enum()
        enum.block = block
        enum.stats = EnumerationStats()
        enum._best_steps = None
        enum._best_cost = math.inf
        enum._redistribute_requested = False
        enum._complete(["plan-a"], 1000.0)
        enum._complete(["plan-b"], 2000.0)
        assert enum._best_cost == 1000.0
        assert enum._best_steps == ["plan-a"]

    def test_first_plan_cost_recorded(self):
        enum, block = self.make_enum()
        enum.block = block
        enum.stats = EnumerationStats()
        enum._best_steps = None
        enum._best_cost = math.inf
        enum._redistribute_requested = False
        enum._complete(["p"], 777.0)
        assert enum.stats.first_plan_cost == 777.0
        enum._complete(["q"], 500.0)
        assert enum.stats.first_plan_cost == 777.0


class TestStatsMemoryAccounting:
    def test_peak_memory_tracks_depth_and_candidates(self):
        stats = EnumerationStats()
        stats.note_memory(depth=10, candidate_count=5)
        first = stats.peak_memory_bytes
        stats.note_memory(depth=100, candidate_count=50)
        assert stats.peak_memory_bytes > first
        stats.note_memory(depth=1, candidate_count=1)
        assert stats.peak_memory_bytes > first  # peak is sticky
        assert stats.max_depth == 100
