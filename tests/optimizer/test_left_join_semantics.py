"""Minimal reproductions of engine bugs the query generator exposed.

Each test is the hand-shrunk form of a metamorphic-soak catch (the
seeded streams themselves are replayed by
``tests/testgen/test_regression_triples.py``):

* WHERE conjuncts on a LEFT JOIN's nullable side must filter *after*
  the join — folding them into the join condition (or pushing them into
  the inner scan) resurrects NULL-extended rows that the predicate
  rejected.
* A NULL index key (or NULL bound) can never satisfy a sarg; the
  snapshot-path bounds re-check used to compare ``None`` against floats
  and crash.
* The hash-join alternate must find *the* equi conjunct; it used to
  assume the first conjunct was one and crashed on ``NOT (...)``.
"""

import pytest

from repro import Server, ServerConfig, StatementOverrides


@pytest.fixture()
def connection():
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    connection.execute(
        "CREATE TABLE parent (pk INT PRIMARY KEY, label VARCHAR(8))"
    )
    connection.execute(
        "CREATE TABLE child (pk INT PRIMARY KEY, ref INT, w INT)"
    )
    for pk, label in ((1, "one"), (2, "two"), (3, "three")):
        connection.execute(
            "INSERT INTO parent VALUES (%d, '%s')" % (pk, label)
        )
    # parent 1 matches with w=100, parent 2 matches with w=10,
    # parent 3 is unmatched (NULL-extended by the LEFT JOIN).
    connection.execute("INSERT INTO child VALUES (1, 1, 100)")
    connection.execute("INSERT INTO child VALUES (2, 2, 10)")
    return connection


def test_left_join_where_on_nullable_side_filters_after_join(connection):
    rows = connection.execute(
        "SELECT parent.pk, child.w FROM parent "
        "LEFT JOIN child ON parent.pk = child.ref "
        "WHERE child.w > 50 ORDER BY parent.pk"
    ).rows
    # The NULL-extended parent 3 row (and parent 2, w=10) must NOT
    # survive: w > 50 is unknown/false for them.
    assert rows == [(1, 100)]


def test_left_join_where_is_null_keeps_antijoin_semantics(connection):
    rows = connection.execute(
        "SELECT parent.pk FROM parent "
        "LEFT JOIN child ON parent.pk = child.ref "
        "WHERE child.ref IS NULL ORDER BY parent.pk"
    ).rows
    assert rows == [(3,)]


def test_left_join_on_conjunct_still_drives_matching(connection):
    # The extra ON conjunct restricts *matching*, not the output: every
    # parent row survives, parent 2 and 3 NULL-extended.
    rows = connection.execute(
        "SELECT parent.pk, child.w FROM parent "
        "LEFT JOIN child ON parent.pk = child.ref AND child.w > 50 "
        "ORDER BY parent.pk"
    ).rows
    assert rows == [(1, 100), (2, None), (3, None)]


def test_left_join_matches_heap_scan_plan(connection):
    sql = (
        "SELECT parent.pk, child.w FROM parent "
        "LEFT JOIN child ON parent.pk = child.ref "
        "WHERE child.w > 50 ORDER BY parent.pk"
    )
    indexed = connection.execute(sql).rows
    heap = connection.execute(
        sql, overrides=StatementOverrides(force_heap_scan=True)
    ).rows
    assert indexed == heap


def test_null_index_keys_never_satisfy_a_sarg():
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    connection.execute("CREATE TABLE t (pk INT PRIMARY KEY, v DOUBLE)")
    connection.execute("CREATE INDEX ix_v ON t (v)")
    for pk, v in ((0, "NULL"), (1, "1.5"), (2, "NULL"), (3, "7.0")):
        connection.execute("INSERT INTO t VALUES (%d, %s)" % (pk, v))
    sql = "SELECT pk FROM t WHERE v > 1.0 ORDER BY pk"
    for overrides in (
        None,
        StatementOverrides(snapshot_reads=True),
        StatementOverrides(force_heap_scan=True),
    ):
        rows = connection.execute(sql, overrides=overrides).rows
        assert rows == [(1,), (3,)]


def test_hash_join_alternate_survives_unary_first_conjunct(connection):
    # The UnaryOp conjunct binds first; the equi conjunct that feeds the
    # hash-join alternate is second.  This used to crash plan build.
    rows = connection.execute(
        "SELECT parent.pk, child.w FROM parent, child "
        "WHERE NOT (child.w < 50) AND parent.pk = child.ref "
        "ORDER BY parent.pk"
    ).rows
    assert rows == [(1, 100)]
