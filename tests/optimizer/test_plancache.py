"""Unit tests for the plan cache (training period + decaying verification)."""

from repro.optimizer import PlanCache
from repro.optimizer.plancache import plan_signature


class FakeResult:
    def __init__(self, signature):
        self.signature = signature


def make_optimizer(signatures):
    """An optimize_fn that returns queued signatures (last repeats)."""
    state = {"i": 0}

    def optimize():
        index = min(state["i"], len(signatures) - 1)
        state["i"] += 1
        return FakeResult(signatures[index])

    return optimize, state


def sig(result):
    return result.signature


def test_training_period_optimizes_every_time():
    cache = PlanCache(training_period=3)
    optimize, state = make_optimizer(["A"])
    for __ in range(3):
        cache.execute_plan_for("q1", optimize, sig)
    assert state["i"] == 3
    assert cache.is_cached("q1")


def test_cached_plan_reused_after_training():
    cache = PlanCache(training_period=3, verify_schedule=(100,))
    optimize, state = make_optimizer(["A"])
    for __ in range(10):
        cache.execute_plan_for("q1", optimize, sig)
    # 3 training optimizations, then pure cache hits.
    assert state["i"] == 3
    assert cache.hits == 7


def test_unstable_plans_never_cached():
    cache = PlanCache(training_period=3)
    optimize, state = make_optimizer(["A", "B", "A", "B", "A", "B"])
    for __ in range(6):
        cache.execute_plan_for("q1", optimize, sig)
    assert not cache.is_cached("q1")
    assert state["i"] == 6  # optimized every time


def test_verification_schedule_decays():
    cache = PlanCache(training_period=2, verify_schedule=(4, 8, 16))
    optimize, state = make_optimizer(["A"])
    for __ in range(20):
        cache.execute_plan_for("q1", optimize, sig)
    # 2 training + 3 verification optimizations.
    assert state["i"] == 5
    assert cache.verifications == 3


def test_stale_plan_detected_on_verify():
    cache = PlanCache(training_period=2, verify_schedule=(4,))
    # Plan changes after training (statistics drifted).
    optimize, state = make_optimizer(["A", "A", "B", "B", "B", "B"])
    results = [cache.execute_plan_for("q1", optimize, sig) for __ in range(8)]
    assert cache.invalidations == 1
    # After invalidation the new plan is served.
    assert results[-1].signature == "B"


def test_verification_continues_past_schedule_end():
    # Regression: verification used to stop entirely after the last
    # schedule entry (use 1024), so a plan gone stale at use 1500 was
    # served forever.  The schedule now keeps doubling.
    cache = PlanCache(training_period=2, verify_schedule=(4, 8))
    calls = {"n": 0}

    def optimize():
        # The "right" plan flips after call 1500 (statistics drifted).
        return FakeResult("A" if calls["n"] < 1500 else "B")

    results = []
    for __ in range(2100):
        calls["n"] += 1
        results.append(cache.execute_plan_for("q1", optimize, sig))
    # Doubling continues: 16, 32, ..., 1024, 2048 are all verified.
    assert cache.verifications >= 10
    assert cache.invalidations == 1
    assert results[-1].signature == "B"


def test_power_of_two_verification_points():
    # Uses 4, 8, ..., 2048 trigger verification; nothing in between does.
    cache = PlanCache(training_period=0, verify_schedule=(4, 8))
    verified_at = [
        uses for uses in range(1, 2500) if cache._due_for_verification(uses)
    ]
    assert verified_at == [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]


def test_lru_eviction():
    cache = PlanCache(training_period=1, max_entries=2)
    optimize, __ = make_optimizer(["A"])
    cache.execute_plan_for("q1", optimize, sig)
    cache.execute_plan_for("q2", optimize, sig)
    cache.execute_plan_for("q3", optimize, sig)
    assert cache.entry_count() == 2
    assert not cache.is_cached("q1")


def test_per_statement_isolation():
    cache = PlanCache(training_period=2)
    opt_a, state_a = make_optimizer(["A"])
    opt_b, state_b = make_optimizer(["B"])
    for __ in range(4):
        cache.execute_plan_for("qa", opt_a, sig)
        cache.execute_plan_for("qb", opt_b, sig)
    assert cache.is_cached("qa")
    assert cache.is_cached("qb")
    assert state_a["i"] == 2
    assert state_b["i"] == 2


def test_plan_signature_walks_tree():
    from repro.optimizer import OptimizerResult, SeqScanPlan

    class Q:
        alias = "t"

    plan = SeqScanPlan(Q(), [])
    result = OptimizerResult(plan)
    assert "SeqScan" in plan_signature(result)
    assert plan_signature(OptimizerResult(None)) == "<none>"
