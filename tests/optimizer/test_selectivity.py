"""Unit tests for the selectivity estimator."""

import pytest

from repro.buffer import BufferPool
from repro.catalog import Catalog, Column, ForeignKey, IndexSchema, TableSchema
from repro.common import SimClock
from repro.optimizer import SelectivityEstimator
from repro.optimizer.selectivity import (
    DEFAULT_EQ,
    DEFAULT_JOIN,
    DEFAULT_LIKE,
    DEFAULT_RANGE,
)
from repro.sql import Binder, parse_statement
from repro.stats import StatisticsManager
from repro.storage import FlashDisk, Volume
from repro.storage.btree import BTree
from repro.storage.rowstore import TableStorage


@pytest.fixture
def env():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 200_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=256)
    catalog = Catalog()
    emp = catalog.add_table(TableSchema(
        "emp",
        [
            Column("id", "INT", nullable=False),
            Column("dept_id", "INT"),
            Column("name", "VARCHAR"),
        ],
        primary_key=("id",),
    ))
    dept = catalog.add_table(TableSchema(
        "dept",
        [Column("id", "INT", nullable=False), Column("dname", "VARCHAR")],
        primary_key=("id",),
    ))
    emp.foreign_keys.append(ForeignKey(["dept_id"], "dept", ["id"]))
    emp.storage = TableStorage(emp, volume.create_file("emp"), pool)
    dept.storage = TableStorage(dept, volume.create_file("dept"), pool)
    for i in range(1000):
        emp.storage.insert((i, i % 20, "name-%d" % i))
    for i in range(20):
        dept.storage.insert((i, "dept-%d" % i))
    manager = StatisticsManager(catalog)
    estimator = SelectivityEstimator(manager, catalog)
    return catalog, manager, estimator


def bind_where(catalog, sql_where, table="emp"):
    binder = Binder(catalog)
    block = binder.bind(parse_statement(
        "SELECT 1 FROM %s WHERE %s" % (table, sql_where)
    ))
    return block.conjuncts[0].expr, block.quantifiers[0]


class TestDefaults:
    """Magic numbers when no statistics exist."""

    def test_eq_default(self, env):
        catalog, __, estimator = env
        expr, quantifier = bind_where(catalog, "dept_id = 3")
        assert estimator.local_selectivity(expr, quantifier) == DEFAULT_EQ

    def test_range_default(self, env):
        catalog, __, estimator = env
        expr, quantifier = bind_where(catalog, "dept_id > 3")
        assert estimator.local_selectivity(expr, quantifier) == DEFAULT_RANGE

    def test_like_default(self, env):
        catalog, __, estimator = env
        expr, quantifier = bind_where(catalog, "name LIKE '%x%'")
        assert estimator.local_selectivity(expr, quantifier) == DEFAULT_LIKE

    def test_is_null_on_not_null_column_is_zero(self, env):
        catalog, __, estimator = env
        expr, quantifier = bind_where(catalog, "id IS NULL")
        assert estimator.local_selectivity(expr, quantifier) == 0.0


class TestWithHistograms:
    def test_eq_uses_histogram(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "dept_id = 3")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.05, rel=0.05
        )

    def test_range_uses_histogram(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["id"])
        expr, quantifier = bind_where(catalog, "id < 250")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.25, abs=0.08
        )

    def test_flipped_comparison(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["id"])
        expr, quantifier = bind_where(catalog, "250 > id")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.25, abs=0.08
        )

    def test_not_equals_complements(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "dept_id <> 3")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.95, rel=0.05
        )

    def test_in_list_sums(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "dept_id IN (1, 2, 3)")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.15, rel=0.1
        )

    def test_or_combines(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "dept_id = 1 OR dept_id = 2")
        selectivity = estimator.local_selectivity(expr, quantifier)
        assert selectivity == pytest.approx(0.05 + 0.05 - 0.0025, rel=0.1)

    def test_not_complements(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "NOT dept_id = 3")
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.95, rel=0.05
        )

    def test_parameter_falls_to_density(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["dept_id"])
        expr, quantifier = bind_where(catalog, "dept_id = ?")
        # 20 distinct values: density ~ 1/20.
        assert estimator.local_selectivity(expr, quantifier) == pytest.approx(
            0.05, rel=0.2
        )

    def test_like_prefix_uses_histogram(self, env):
        catalog, manager, estimator = env
        manager.build_statistics("emp", ["name"])
        expr, quantifier = bind_where(catalog, "name LIKE 'name-1%'")
        selectivity = estimator.local_selectivity(expr, quantifier)
        # 111 of 1000 names start with "name-1".
        assert 0.02 < selectivity < 0.4


class TestJoinSelectivity:
    def bind_join(self, catalog):
        binder = Binder(catalog)
        block = binder.bind(parse_statement(
            "SELECT 1 FROM emp e, dept d WHERE e.dept_id = d.id"
        ))
        conjunct = block.conjuncts[0]
        return conjunct, block.quantifiers[0], block.quantifiers[1]

    def test_ri_constraint_wins(self, env):
        catalog, __, estimator = env
        conjunct, emp_q, dept_q = self.bind_join(catalog)
        # FK -> PK: selectivity = 1 / |dept|.
        assert estimator.join_conjunct_selectivity(
            conjunct, emp_q, dept_q
        ) == pytest.approx(1 / 20)

    def test_histogram_join_without_ri(self, env):
        catalog, manager, estimator = env
        catalog.table("emp").foreign_keys.clear()
        manager.build_statistics("emp", ["dept_id"])
        manager.build_statistics("dept", ["id"])
        conjunct, emp_q, dept_q = self.bind_join(catalog)
        selectivity = estimator.join_conjunct_selectivity(conjunct, emp_q, dept_q)
        assert selectivity == pytest.approx(1 / 20, rel=0.5)

    def test_index_distinct_fallback(self, env):
        catalog, __, estimator = env
        catalog.table("emp").foreign_keys.clear()
        clock = SimClock()
        volume = Volume(FlashDisk(clock, 50_000))
        pool = BufferPool(volume.create_file("t"), 128)
        index = IndexSchema("dept_pk2", "dept", ["id"])
        index.btree = BTree(volume.create_file("i"), pool)
        for i in range(20):
            from repro.storage.rowstore import RowId
            index.btree.insert((i,), RowId(0, i))
        catalog.add_index(index)
        conjunct, emp_q, dept_q = self.bind_join(catalog)
        assert estimator.join_conjunct_selectivity(
            conjunct, emp_q, dept_q
        ) == pytest.approx(1 / 20)

    def test_default_join_without_any_stats(self, env):
        catalog, __, estimator = env
        catalog.table("emp").foreign_keys.clear()
        conjunct, emp_q, dept_q = self.bind_join(catalog)
        assert estimator.join_conjunct_selectivity(
            conjunct, emp_q, dept_q
        ) == DEFAULT_JOIN
