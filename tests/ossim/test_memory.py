"""Unit tests for the simulated operating system."""

import pytest

from repro.common import MiB, SimClock
from repro.ossim import OperatingSystem
from repro.ossim.memory import WorkingSetUnavailable


def make_os(total=256 * MiB, **kwargs):
    return OperatingSystem(total, **kwargs)


def test_usable_excludes_kernel_reserve():
    os = make_os(256 * MiB, kernel_reserve=8 * MiB)
    assert os.usable_memory == 248 * MiB


def test_total_must_exceed_reserve():
    with pytest.raises(ValueError):
        OperatingSystem(4 * MiB, kernel_reserve=8 * MiB)


def test_spawn_and_allocate():
    os = make_os()
    proc = os.spawn("app")
    proc.allocate(10 * MiB)
    assert proc.allocated == 10 * MiB
    assert os.total_allocated() == 10 * MiB


def test_allocate_negative_frees():
    os = make_os()
    proc = os.spawn("app")
    proc.allocate(10 * MiB)
    proc.allocate(-4 * MiB)
    assert proc.allocated == 6 * MiB


def test_cannot_free_below_zero():
    proc = make_os().spawn("app")
    with pytest.raises(ValueError):
        proc.allocate(-1)


def test_set_allocation_absolute():
    proc = make_os().spawn("app")
    proc.set_allocation(12 * MiB)
    assert proc.allocated == 12 * MiB
    with pytest.raises(ValueError):
        proc.set_allocation(-1)


def test_working_set_fully_resident_when_memory_fits():
    os = make_os(256 * MiB)
    proc = os.spawn("db")
    proc.allocate(100 * MiB)
    assert os.working_set(proc) == 100 * MiB


def test_free_memory_accounts_residents():
    os = make_os(256 * MiB, kernel_reserve=8 * MiB)
    proc = os.spawn("db")
    proc.allocate(100 * MiB)
    assert os.free_memory() == 148 * MiB


def test_overcommit_trims_proportionally():
    os = make_os(108 * MiB, kernel_reserve=8 * MiB)  # 100 MiB usable
    a = os.spawn("a")
    b = os.spawn("b")
    a.allocate(150 * MiB)
    b.allocate(50 * MiB)
    # Demand is 200 MiB for 100 MiB usable: everyone keeps half.
    assert os.working_set(a) == 75 * MiB
    assert os.working_set(b) == 25 * MiB
    assert os.free_memory() == 0


def test_pressure_metric():
    os = make_os(108 * MiB, kernel_reserve=8 * MiB)
    proc = os.spawn("p")
    assert os.memory_pressure() == 0.0
    proc.allocate(50 * MiB)
    assert os.memory_pressure() == pytest.approx(0.5)
    proc.allocate(200 * MiB)
    assert os.memory_pressure() == pytest.approx(1.0)


def test_ce_flavour_cannot_report_working_set():
    os = make_os(supports_working_set=False)
    proc = os.spawn("db")
    proc.allocate(MiB)
    with pytest.raises(WorkingSetUnavailable):
        os.working_set(proc)
    # Free memory is still available on CE.
    assert os.free_memory() > 0


def test_scripted_process_follows_schedule():
    clock = SimClock()
    os = make_os()
    proc = os.spawn_scripted(
        "burst", clock, [(100, 30 * MiB), (200, 5 * MiB), (300, 0)]
    )
    assert proc.allocated == 0
    clock.advance(100)
    assert proc.allocated == 30 * MiB
    clock.advance(100)
    assert proc.allocated == 5 * MiB
    clock.advance(100)
    assert proc.allocated == 0


def test_processes_snapshot():
    os = make_os()
    os.spawn("a")
    os.spawn("b")
    assert [process.name for process in os.processes()] == ["a", "b"]
