"""Unit tests for the Index Consultant (virtual indexes)."""

import pytest

from repro import Server, ServerConfig
from repro.profiling import IndexConsultant, VirtualBTree


@pytest.fixture
def server():
    server = Server(ServerConfig(start_buffer_governor=False,
                                 initial_pool_pages=512))
    conn = server.connect()
    conn.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, region INT, amount DOUBLE, "
        "day INT)"
    )
    server.load_table(
        "sales",
        [(i, i % 40, float(i % 997), i % 365) for i in range(20000)],
    )
    return server


class TestVirtualBTree:
    def test_statistics_shape(self):
        virtual = VirtualBTree(table_rows=64_000, distinct_keys=1000)
        assert virtual.stats.entry_count == 64_000
        assert virtual.stats.distinct_keys == 1000
        assert virtual.stats.leaf_page_count == 1000
        assert virtual.height >= 2
        assert virtual.cached_clustering() == 0.5
        assert virtual.file.size_bytes == 0

    def test_density(self):
        virtual = VirtualBTree(1000, 100)
        assert virtual.stats.density() == pytest.approx(0.01)


class TestConsultant:
    def test_recommends_index_for_selective_predicate(self, server):
        consultant = IndexConsultant(server)
        workload = ["SELECT amount FROM sales WHERE region = 7"] * 3
        recommendations = consultant.analyze(workload)
        creates = [r for r in recommendations if r.action == "create"]
        assert creates
        assert creates[0].table_name == "sales"
        assert "region" in creates[0].column_names
        assert creates[0].benefit_us > 0

    def test_no_recommendation_for_full_scans(self, server):
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze(["SELECT amount FROM sales"])
        assert [r for r in recommendations if r.action == "create"] == []

    def test_no_recommendation_when_index_exists(self, server):
        conn = server.connect()
        conn.execute("CREATE INDEX sales_region ON sales (region)")
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze(
            ["SELECT amount FROM sales WHERE region = 7"]
        )
        assert [r for r in recommendations if r.action == "create"] == []

    def test_composite_spec_for_eq_plus_range(self, server):
        consultant = IndexConsultant(server)
        workload = [
            "SELECT amount FROM sales WHERE region = 3 AND day > 300"
        ] * 3
        recommendations = consultant.analyze(workload)
        creates = {r.column_names for r in recommendations if r.action == "create"}
        assert ("region", "day") in creates or ("region",) in creates

    def test_virtual_indexes_removed_after_analysis(self, server):
        consultant = IndexConsultant(server)
        consultant.analyze(["SELECT amount FROM sales WHERE region = 7"])
        names = [index.name for index in server.catalog.indexes()]
        assert all(not name.startswith("virt_") for name in names)

    def test_drop_recommendation_for_unused_index(self, server):
        conn = server.connect()
        conn.execute("CREATE INDEX useless ON sales (amount)")
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze(
            ["SELECT COUNT(*) FROM sales WHERE day = 10"]
        )
        drops = [r for r in recommendations if r.action == "drop"]
        assert any(r.index_name == "useless" for r in drops)

    def test_used_index_not_dropped(self, server):
        conn = server.connect()
        conn.execute("CREATE INDEX sales_day ON sales (day)")
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze(
            ["SELECT amount FROM sales WHERE day = 10"]
        )
        drops = [r.index_name for r in recommendations if r.action == "drop"]
        assert "sales_day" not in drops

    def test_applying_recommendation_speeds_up_workload(self, server):
        """Closing the loop: the recommended index reduces actual cost."""
        conn = server.connect()
        query = "SELECT amount FROM sales WHERE region = 7"
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze([query])
        creates = [r for r in recommendations if r.action == "create"]
        assert creates
        # Time the workload before and after applying the recommendation.
        server.pool.set_capacity(64)  # keep the table from being cached
        start = server.clock.now
        conn.execute(query)
        before_us = server.clock.now - start
        best = creates[0]
        conn.execute(
            "CREATE INDEX applied ON %s (%s)"
            % (best.table_name, ", ".join(best.column_names))
        )
        server.pool.set_capacity(64)
        start = server.clock.now
        conn.execute(query)
        after_us = server.clock.now - start
        assert after_us < before_us

    def test_join_column_spec(self, server):
        conn = server.connect()
        conn.execute("CREATE TABLE region_info (rid INT, name VARCHAR(10))")
        server.load_table(
            "region_info", [(i, "r%d" % i) for i in range(40)]
        )
        consultant = IndexConsultant(server)
        recommendations = consultant.analyze([
            "SELECT r.name FROM sales s, region_info r "
            "WHERE s.region = r.rid AND s.day = 5"
        ] * 2)
        creates = {r.column_names for r in recommendations if r.action == "create"}
        # At least one useful index among day/region/rid is suggested.
        assert creates

    def test_rejects_non_select(self, server):
        consultant = IndexConsultant(server)
        with pytest.raises(ValueError):
            consultant.analyze(["DELETE FROM sales"])
