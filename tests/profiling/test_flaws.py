"""Unit tests for the design-flaw analyzers."""

from repro import Server, ServerConfig
from repro.profiling import (
    ClientSideJoinDetector,
    FlawAnalyzer,
    OptionSettingDetector,
    RepeatedStatementDetector,
    Tracer,
)


def traced_server():
    server = Server(ServerConfig(start_buffer_governor=False))
    server.tracer = Tracer()
    conn = server.connect()
    conn.execute("CREATE TABLE item (id INT PRIMARY KEY, price DOUBLE)")
    conn.execute("CREATE TABLE orders (id INT PRIMARY KEY, item_id INT)")
    for i in range(30):
        conn.execute("INSERT INTO item VALUES (%d, %f)" % (i, float(i)))
    return server, conn


class TestClientSideJoin:
    def test_detects_constant_loop(self):
        server, conn = traced_server()
        # The classic client-side join: one query per id in a loop.
        for i in range(30):
            conn.execute("SELECT price FROM item WHERE id = %d" % i)
        flaws = ClientSideJoinDetector(min_repetitions=20).detect(
            server.tracer, server.catalog
        )
        assert len(flaws) == 1
        assert flaws[0].kind == "client-side-join"
        assert "single" in flaws[0].recommendation

    def test_ignores_few_repetitions(self):
        server, conn = traced_server()
        for i in range(5):
            conn.execute("SELECT price FROM item WHERE id = %d" % i)
        flaws = ClientSideJoinDetector(min_repetitions=20).detect(
            server.tracer, server.catalog
        )
        assert flaws == []

    def test_ignores_identical_repeats(self):
        # Same constants every time: that's a repeated statement, not a
        # client-side join.
        server, conn = traced_server()
        for __ in range(30):
            conn.execute("SELECT price FROM item WHERE id = 7")
        flaws = ClientSideJoinDetector(min_repetitions=20).detect(
            server.tracer, server.catalog
        )
        assert flaws == []

    def test_ignores_dml(self):
        server, conn = traced_server()
        for i in range(30, 60):
            conn.execute("INSERT INTO orders VALUES (%d, %d)" % (i, i % 30))
        flaws = ClientSideJoinDetector(min_repetitions=20).detect(
            server.tracer, server.catalog
        )
        assert flaws == []


class TestRepeatedStatement:
    def test_detects_verbatim_repeats(self):
        server, conn = traced_server()
        for __ in range(60):
            conn.execute("SELECT COUNT(*) FROM item")
        flaws = RepeatedStatementDetector(min_repetitions=50).detect(
            server.tracer, server.catalog
        )
        assert len(flaws) == 1
        assert flaws[0].kind == "repeated-statement"


class TestOptionSettings:
    def test_detects_bad_option(self):
        server, conn = traced_server()
        conn.execute("SET OPTION optimization_goal = 'fastest-please'")
        flaws = OptionSettingDetector().detect(server.tracer, server.catalog)
        assert len(flaws) == 1
        assert flaws[0].severity == "critical"

    def test_accepts_good_option(self):
        server, conn = traced_server()
        conn.execute("SET OPTION optimization_goal = 'first-row'")
        flaws = OptionSettingDetector().detect(server.tracer, server.catalog)
        assert flaws == []

    def test_unknown_options_ignored(self):
        server, conn = traced_server()
        conn.execute("SET OPTION some_custom_option = 'whatever'")
        flaws = OptionSettingDetector().detect(server.tracer, server.catalog)
        assert flaws == []


class TestAnalyzer:
    def test_all_detectors_run_and_sorted(self):
        server, conn = traced_server()
        conn.execute("SET OPTION optimization_goal = 'bogus'")
        for i in range(30):
            conn.execute("SELECT price FROM item WHERE id = %d" % i)
        flaws = FlawAnalyzer().analyze(server.tracer, server.catalog)
        kinds = [flaw.kind for flaw in flaws]
        assert "option-setting" in kinds
        assert "client-side-join" in kinds
        # critical first
        assert flaws[0].severity == "critical"
