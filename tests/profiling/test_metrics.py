"""Metrics registry unit tests plus server-level counter coverage."""

import pytest

from repro.common import SimClock
from repro.engine import Server, ServerConfig
from repro.profiling.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# --------------------------------------------------------------------- #
# primitives
# --------------------------------------------------------------------- #

class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increment(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_bounded_buckets(self):
        hist = Histogram("h", bounds=(10, 100))
        for value in (5, 10, 50, 5000):
            hist.observe(value)
        # <=10, <=100, overflow
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == 5065
        assert hist.min == 5
        assert hist.max == 5000

    def test_snapshot_names_buckets(self):
        hist = Histogram("h", bounds=(10, 100))
        hist.observe(7)
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_10": 1, "le_100": 0, "overflow": 0}
        assert snap["count"] == 1


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

class TestMetricsRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.register_probe("x", lambda: 1)

    def test_probe_is_evaluated_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.register_probe("probe", lambda: state["n"])
        assert registry.snapshot()["probe"] == 1
        state["n"] = 42
        assert registry.snapshot()["probe"] == 42
        assert registry.value("probe") == 42

    def test_snapshot_is_sorted_and_stamped_with_sim_time(self):
        clock = SimClock()
        registry = MetricsRegistry(clock)
        registry.counter("zz").inc(2)
        registry.gauge("aa").set(1)
        clock.advance(123)
        snap = registry.snapshot()
        assert snap["snapshot_at_us"] == 123
        names = [k for k in snap if k != "snapshot_at_us"]
        assert names == sorted(names)
        assert snap["zz"] == 2
        assert snap["aa"] == 1

    def test_names_lists_every_registered_metric(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.register_probe("a", lambda: 0)
        assert registry.names() == ["a", "b"]


# --------------------------------------------------------------------- #
# the server publishes through one registry
# --------------------------------------------------------------------- #

class TestServerMetrics:
    def test_engine_components_publish_counters(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        server.load_table("t", [(i, i * 2) for i in range(50)])
        conn.execute("SELECT v FROM t WHERE id = 7")
        conn.execute("SELECT COUNT(*) FROM t")
        snap = server.metrics.snapshot()
        # statement layer
        assert snap["statements.executed"] >= 3
        assert snap["statements.elapsed_us"]["count"] >= 3
        # executor + optimizer
        assert snap["exec.queries"] == 2
        assert snap["optimizer.optimizations"] == 2
        assert snap["optimizer.nodes_visited"] > 0
        # buffer pool probes reflect the live pool
        assert snap["pool.hits"] == server.pool.hits
        assert snap["pool.misses"] == server.pool.misses
        assert snap["pool.capacity_pages"] == server.pool.capacity_pages
        # memory governor probes
        assert snap["memgov.multiprogramming_level"] == (
            server.config.multiprogramming_level
        )
        assert snap["memgov.tasks_completed"] >= 2
        conn.close()

    def test_plan_cache_and_failure_counters(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        conn.execute(
            "CREATE PROCEDURE p () AS SELECT id FROM t WHERE id = 1"
        )
        for __ in range(6):
            conn.execute("CALL p()")
        with pytest.raises(Exception):
            conn.execute("SELECT nope FROM missing_table")
        snap = server.metrics.snapshot()
        assert snap["plancache.optimizations"] >= 1
        assert snap["plancache.hits"] >= 1
        assert snap["statements.failed"] == 1
        conn.close()

    def test_buffer_governor_publishes_poll_counters(self):
        server = Server(ServerConfig(start_buffer_governor=True))
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        server.load_table("t", [(i,) for i in range(200)])
        for __ in range(5):
            conn.execute("SELECT COUNT(*) FROM t")
            server.clock.advance(60_000_000)
        snap = server.metrics.snapshot()
        assert snap["governor.polls"] >= 1
        assert snap["governor.pool_bytes"] > 0
        conn.close()
