"""Unit tests for request tracing."""

from repro import Server, ServerConfig
from repro.profiling import Tracer
from repro.profiling.tracer import normalize_statement


class TestNormalization:
    def test_numbers_become_placeholders(self):
        template, constants = normalize_statement(
            "SELECT a FROM t WHERE id = 42 AND x > 3.5"
        )
        assert template == "SELECT a FROM t WHERE id = ? AND x > ?"
        assert constants == ("42", "3.5")

    def test_strings_become_placeholders(self):
        template, constants = normalize_statement(
            "SELECT a FROM t WHERE name = 'bob'"
        )
        assert template == "SELECT a FROM t WHERE name = ?"
        assert constants == ("'bob'",)

    def test_same_shape_same_template(self):
        t1, __ = normalize_statement("SELECT a FROM t WHERE id = 1")
        t2, __c = normalize_statement("SELECT a FROM t WHERE id = 999")
        assert t1 == t2

    def test_whitespace_normalized(self):
        t1, __ = normalize_statement("SELECT a\n  FROM t")
        assert t1 == "SELECT a FROM t"

    def test_mixed_literals_keep_statement_order(self):
        # Regression: the old two-pass implementation collected every
        # string before any number, so the constants came back out of
        # statement order (and numbers inside strings were re-replaced).
        template, constants = normalize_statement(
            "SELECT a FROM t WHERE id = 5 AND name = 'x' AND age > 30"
        )
        assert template == (
            "SELECT a FROM t WHERE id = ? AND name = ? AND age > ?"
        )
        assert constants == ("5", "'x'", "30")

    def test_numbers_inside_strings_stay_inside_strings(self):
        template, constants = normalize_statement(
            "SELECT a FROM t WHERE name = 'agent 007' AND id = 7"
        )
        assert template == "SELECT a FROM t WHERE name = ? AND id = ?"
        assert constants == ("'agent 007'", "7")


class TestTracer:
    def make_traced_server(self):
        server = Server(ServerConfig(start_buffer_governor=False))
        server.tracer = Tracer()
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        return server, conn

    def test_events_recorded(self):
        server, conn = self.make_traced_server()
        before = len(server.tracer)
        conn.execute("SELECT * FROM t WHERE id = 1")
        assert len(server.tracer) == before + 1
        event = server.tracer.events[-1]
        assert event.template == "SELECT * FROM t WHERE id = ?"
        assert event.rows == 1
        assert event.elapsed_us >= 0

    def test_templates_grouping(self):
        server, conn = self.make_traced_server()
        for i in range(5):
            conn.execute("SELECT v FROM t WHERE id = %d" % i)
        groups = server.tracer.templates()
        assert len(groups["SELECT v FROM t WHERE id = ?"]) == 5

    def test_capacity_cap(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.record("SELECT %d" % i, 0, 1, 0, 0, 0)
        assert len(tracer) == 3

    def test_ring_buffer_keeps_most_recent_events(self):
        # Regression: at capacity the tracer used to drop the *newest*
        # events, so a long profiling run kept only its warm-up.
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.record("SELECT %d" % i, 0, 1, 0, 0, 0)
        assert [event.sequence for event in tracer.events] == [7, 8, 9]
        assert [event.constants for event in tracer.events] == [
            ("7",), ("8",), ("9",),
        ]
        assert tracer.dropped == 7

    def test_failed_statement_appears_in_trace_with_error(self):
        server, conn = self.make_traced_server()
        before = len(server.tracer)
        try:
            conn.execute("INSERT INTO t VALUES (1, 'dup')")  # dup pk
        except Exception:
            pass
        else:  # pragma: no cover - the insert must fail
            raise AssertionError("expected duplicate-key failure")
        assert len(server.tracer) == before + 1
        event = server.tracer.events[-1]
        assert event.template == "INSERT INTO t VALUES (?, ?)"
        assert event.error is not None
        assert "duplicate" in event.error
        assert event.elapsed_us >= 0
        assert event.rows == 0
        # successful statements keep a clean error field
        conn.execute("SELECT * FROM t WHERE id = 1")
        assert server.tracer.events[-1].error is None

    def test_save_to_database(self):
        server, conn = self.make_traced_server()
        conn.execute("SELECT * FROM t")
        conn.execute("SELECT v FROM t WHERE id = 2")
        tracer = server.tracer
        server.tracer = None  # stop tracing while persisting
        saved = tracer.save_to_database(conn)
        assert saved == len(tracer.events)
        stored = conn.execute("SELECT COUNT(*) FROM profiling_trace")
        assert stored.rows == [(saved,)]

    def test_save_to_separate_database(self):
        server, conn = self.make_traced_server()
        conn.execute("SELECT * FROM t")
        tracer = server.tracer
        # "storing the trace data on a database on a separate physical
        # machine" — a second server entirely.
        other = Server(ServerConfig(start_buffer_governor=False))
        other_conn = other.connect()
        tracer.save_to_database(other_conn)
        count = other_conn.execute("SELECT COUNT(*) FROM profiling_trace")
        assert count.rows[0][0] == len(tracer.events)
