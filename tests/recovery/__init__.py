"""Crash-recovery tests: log framing, restart, governor, crash matrix."""
