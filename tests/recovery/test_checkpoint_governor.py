"""Checkpoint-governor control law, driven as a rig (no server)."""

import pytest

from repro.buffer.pool import BufferPool
from repro.common import SimClock
from repro.common.errors import IOFaultError
from repro.common.units import SECOND
from repro.dtt import default_dtt_model
from repro.profiling.metrics import MetricsRegistry
from repro.recovery.checkpoint import (
    CKPT_FIXED,
    CKPT_IDLE,
    CKPT_URGENT,
    HOLD,
    HOLD_RECOVERY,
    CheckpointConfig,
    CheckpointGovernor,
)
from repro.storage import FlashDisk, TransactionLog, Volume
from repro.storage.log import INSERT


class Rig:
    """A governor wired to a real log/pool pair with spy hooks."""

    def __init__(self, config=None, checkpoint_error=None):
        self.clock = SimClock()
        self.volume = Volume(FlashDisk(self.clock, 50_000))
        self.pool = BufferPool(self.volume.create_file("temp"), 64)
        self.log = TransactionLog(self.volume.create_file("txn.log"))
        self.metrics = MetricsRegistry(self.clock)
        self.statements = 0
        self.checkpoints_taken = 0
        self.in_recovery = False
        self._checkpoint_error = checkpoint_error

        def checkpoint_fn():
            if self._checkpoint_error is not None:
                raise self._checkpoint_error
            self.checkpoints_taken += 1
            begin = self.log.checkpoint_begin(
                self.log.active_txns(), self.pool.dirty_page_table()
            )
            self.pool.flush_all()
            self.log.checkpoint_end(begin)

        self.governor = CheckpointGovernor(
            self.clock,
            log_fn=lambda: self.log,
            pool=self.pool,
            model=default_dtt_model(4096),
            page_size=4096,
            checkpoint_fn=checkpoint_fn,
            statements_fn=lambda: self.statements,
            config=config if config is not None else CheckpointConfig(),
            metrics=self.metrics,
            in_recovery_fn=lambda: self.in_recovery,
        )

    def write_log(self, records, txn_id=1):
        self.log.begin(txn_id)
        for row in range(records):
            self.log.log_change(txn_id, INSERT, "t", row, after=(row,))
        self.log.commit(txn_id)


class TestControlLaw:
    def test_urgent_when_estimate_over_target(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=1))
        rig.write_log(40)
        rig.statements += 1  # busy: only the target can force it
        sample = rig.governor.poll_once()
        assert sample.action == CKPT_URGENT
        assert rig.checkpoints_taken == 1
        assert rig.log.records_since_checkpoint() == 0

    def test_idle_checkpoint_when_quiet_with_pending_log(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=3600 * SECOND))
        rig.write_log(5)
        # The statement counter has not moved since the governor was
        # built: the server is idle, recovery debt is paid for free.
        sample = rig.governor.poll_once()
        assert sample.action == CKPT_IDLE
        assert rig.checkpoints_taken == 1
        follow_up = rig.governor.poll_once()  # nothing left to protect
        assert follow_up.action == HOLD

    def test_hold_when_busy_and_under_target(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=3600 * SECOND))
        rig.write_log(5)
        rig.statements += 1
        sample = rig.governor.poll_once()
        assert sample.action == HOLD
        assert rig.checkpoints_taken == 0

    def test_estimate_clears_after_checkpoint(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=1))
        rig.write_log(40)
        assert rig.governor.estimate_recovery_us() > 0
        rig.governor.poll_once()
        assert rig.governor.estimate_recovery_us() == 0

    def test_fixed_mode_checkpoints_every_poll_with_pending_log(self):
        config = CheckpointConfig(adaptive=False)
        rig = Rig(config)
        rig.write_log(5)
        rig.statements += 1  # fixed mode ignores idleness and target
        sample = rig.governor.poll_once()
        assert sample.action == CKPT_FIXED
        assert sample.interval_us == config.max_poll_interval_us
        idle_sample = rig.governor.poll_once()  # nothing new to protect
        assert idle_sample.action == HOLD

    def test_holds_while_recovery_runs(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=1))
        rig.write_log(40)
        rig.in_recovery = True
        sample = rig.governor.poll_once()
        assert sample.action == HOLD_RECOVERY
        assert rig.checkpoints_taken == 0

    def test_interval_tightens_as_estimate_climbs(self):
        config = CheckpointConfig(recovery_time_target_us=3600 * SECOND)
        rig = Rig(config)
        rig.statements += 1
        rig.governor.poll_once()
        start_interval = rig.governor._interval_us
        assert start_interval == config.max_poll_interval_us
        # A burst of log growth between polls: the slope law must pull
        # the next poll closer.
        for txn in range(2, 8):
            rig.statements += 1
            rig.write_log(60, txn_id=txn)
            rig.clock.advance(1000)
            rig.governor.poll_once()
        assert rig.governor._interval_us < start_interval
        assert rig.governor._interval_us >= config.min_poll_interval_us

    def test_io_fault_is_counted_not_raised(self):
        rig = Rig(
            CheckpointConfig(recovery_time_target_us=1),
            checkpoint_error=IOFaultError("log device down"),
        )
        rig.write_log(40)
        sample = rig.governor.poll_once()  # must not raise
        assert sample.action == CKPT_URGENT
        assert rig.metrics.value("ckpt.io_faults") == 1

    def test_metrics_published(self):
        rig = Rig(CheckpointConfig(recovery_time_target_us=1))
        rig.write_log(40)
        rig.governor.poll_once()
        assert rig.metrics.value("ckpt.polls") == 1
        assert rig.metrics.value("ckpt.action.ckpt-urgent") == 1
        assert rig.metrics.value("ckpt.est_recovery_us") == 0

    def test_timer_lifecycle_on_sim_clock(self):
        config = CheckpointConfig(
            recovery_time_target_us=1,
            min_poll_interval_us=SECOND,
            max_poll_interval_us=2 * SECOND,
        )
        rig = Rig(config)
        rig.write_log(40)
        rig.governor.start()
        rig.clock.advance(5 * SECOND)
        assert rig.checkpoints_taken >= 1
        rig.governor.stop()
        taken = rig.checkpoints_taken
        rig.write_log(40, txn_id=9)
        rig.clock.advance(10 * SECOND)
        assert rig.checkpoints_taken == taken  # stopped governors stay quiet


class TestEstimate:
    def test_estimate_prices_log_and_dirty_pages(self):
        rig = Rig()
        assert rig.governor.estimate_recovery_us() == 0
        rig.write_log(40)
        log_only = rig.governor.estimate_recovery_us()
        assert log_only > 0
        data_file = rig.volume.create_file("data")
        frame = rig.pool.new_page(data_file)
        rig.pool.unpin(frame, dirty=True)
        assert rig.governor.estimate_recovery_us() > log_only

    def test_estimate_scales_with_pending_records(self):
        rig = Rig()
        rig.write_log(10)
        small = rig.governor.estimate_recovery_us()
        rig.write_log(200, txn_id=2)
        assert rig.governor.estimate_recovery_us() > small


class TestServerIntegration:
    def test_server_governor_takes_checkpoints_on_the_clock(self):
        from repro import Server, ServerConfig

        config = ServerConfig(
            start_buffer_governor=False,
            start_checkpoint_governor=True,
            checkpoint=CheckpointConfig(
                recovery_time_target_us=1,
                min_poll_interval_us=SECOND,
                max_poll_interval_us=2 * SECOND,
            ),
        )
        server = Server(config)
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(50):
            conn.execute("INSERT INTO t VALUES (?)", params=[i])
        server.clock.advance(5 * SECOND)
        assert server.metrics.value("ckpt.checkpoints") >= 1
        assert server.metrics.value("ckpt.action.ckpt-urgent") >= 1
        conn.close()

    def test_governor_holds_during_restart_recovery(self):
        from repro import Server, ServerConfig

        config = ServerConfig(
            start_buffer_governor=False,
            checkpoint=CheckpointConfig(recovery_time_target_us=1),
        )
        server = Server(config)
        conn = server.connect()
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1)")
        server.crash()
        server._in_recovery = True
        sample = server.checkpoint_governor.poll_once()
        server._in_recovery = False
        assert sample.action == "hold-recovery"
        server.restart()
        conn.close()


@pytest.mark.no_sanitize
def test_rig_runs_unsanitized_too():
    rig = Rig(CheckpointConfig(recovery_time_target_us=1))
    rig.write_log(40)
    assert rig.governor.poll_once().action == CKPT_URGENT
