"""The crash matrix: seeded crash points × committed-exactly verification.

Every test drives a :class:`CrashHarness`: the server is killed at a
chosen WAL crash site, crashed (volatile state dropped, optionally a
torn log tail), restarted through ARIES-lite recovery, and compared
differentially against a reference server that ran only the committed
statements.  ``harness.run()`` raises :class:`VerificationError` if the
recovered state is anything but committed-exactly.
"""

import pytest

from repro import Server, ServerConfig
from repro.recovery import CHECKPOINT, CrashHarness, CrashPoint
from repro.storage.log import (
    CRASH_APPEND,
    CRASH_CKPT_MID,
    CRASH_COMMIT_EARLY,
    CRASH_COMMIT_LATE,
    CRASH_FORCE_PAGE,
)

SCHEMA = [
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
    "CREATE INDEX ib ON accounts (balance)",
    "INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300), (4, 400)",
]

WORKLOAD = [
    "INSERT INTO accounts VALUES (5, 500)",
    "UPDATE accounts SET balance = 150 WHERE id = 1",
    "BEGIN",
    "UPDATE accounts SET balance = 250 WHERE id = 2",
    "INSERT INTO accounts VALUES (6, 600)",
    "COMMIT",
    "DELETE FROM accounts WHERE id = 3",
    CHECKPOINT,
    "INSERT INTO accounts VALUES (7, 700)",
    "BEGIN",
    "UPDATE accounts SET balance = 1 WHERE id = 4",
    "ROLLBACK",
    "UPDATE accounts SET balance = 999 WHERE id = 4",
    "INSERT INTO accounts VALUES (8, 800)",
]


def make_server():
    return Server(ServerConfig(start_buffer_governor=False))


def run_harness(crash_point, tear_tail=None, workload=WORKLOAD):
    harness = CrashHarness(
        make_server, SCHEMA, workload,
        crash_point=crash_point, tear_tail=tear_tail,
    )
    report = harness.run()
    return harness, report


class TestCrashSites:
    def test_no_crash_point_runs_to_completion(self):
        __, report = run_harness(None)
        assert not report.crashed
        assert report.statements_run == len(WORKLOAD)
        assert report.rows_verified > 0

    def test_crash_mid_statement(self):
        __, report = run_harness(CrashPoint(CRASH_APPEND, occurrence=2))
        assert report.crashed
        assert not report.interrupted_committed
        assert report.tables_verified == 1

    def test_crash_before_commit_force_loses_the_statement(self):
        __, report = run_harness(CrashPoint(CRASH_COMMIT_EARLY))
        assert report.crashed
        # The COMMIT record was appended but never forced: not durable.
        assert not report.interrupted_committed

    def test_crash_after_commit_force_keeps_the_statement(self):
        __, report = run_harness(CrashPoint(CRASH_COMMIT_LATE))
        assert report.crashed
        assert report.interrupted_committed
        assert report.committed_statements == [(WORKLOAD[0], None)]

    def test_crash_during_force_page_write(self):
        __, report = run_harness(CrashPoint(CRASH_FORCE_PAGE, occurrence=3))
        assert report.crashed

    def test_crash_inside_explicit_transaction_drops_the_block(self):
        # Occurrence 4 of wal.append = the first change inside BEGIN.
        __, report = run_harness(CrashPoint(CRASH_APPEND, occurrence=4))
        assert report.crashed
        committed_sql = [sql for sql, __ in report.committed_statements]
        assert "BEGIN" not in committed_sql
        assert committed_sql == WORKLOAD[:2]

    def test_crash_after_explicit_commit_force_keeps_the_block(self):
        # The explicit COMMIT statement is the third commit force
        # (after the two autocommit statements before BEGIN).
        __, report = run_harness(CrashPoint(CRASH_COMMIT_LATE, occurrence=3))
        assert report.crashed
        assert report.interrupted_committed
        committed_sql = [sql for sql, __ in report.committed_statements]
        assert "COMMIT" in committed_sql
        assert "UPDATE accounts SET balance = 250 WHERE id = 2" in committed_sql

    def test_crash_mid_checkpoint(self):
        __, report = run_harness(CrashPoint(CRASH_CKPT_MID))
        assert report.crashed
        assert report.interrupted_statement is None  # a checkpoint died,
        # not a statement — every statement before it must survive whole.
        committed_sql = [sql for sql, __ in report.committed_statements]
        assert "DELETE FROM accounts WHERE id = 3" in committed_sql

    def test_crash_late_in_workload_after_rollback(self):
        __, report = run_harness(CrashPoint(CRASH_APPEND, occurrence=9))
        assert report.crashed
        assert report.recovery is not None


class TestTornTail:
    def test_torn_tail_after_mid_statement_crash(self):
        __, report = run_harness(
            CrashPoint(CRASH_APPEND, occurrence=5), tear_tail=True
        )
        assert report.crashed
        assert report.tables_verified == 1

    def test_torn_tail_never_destroys_an_acknowledged_commit(self):
        """Log pages are written once: the only page a crash can tear is
        the in-flight one, whose records were never acknowledged.  A
        commit whose force completed survives any tear."""
        __, report = run_harness(
            CrashPoint(CRASH_COMMIT_LATE), tear_tail=True
        )
        assert report.crashed
        assert report.recovery.torn_pages_dropped >= 1
        assert report.interrupted_committed

    def test_torn_tail_drops_an_unforced_commit(self):
        """Crashing *before* the commit force with a torn tail: the
        in-flight page held the COMMIT record, so the transaction is a
        loser and the statement's effects must vanish."""
        __, report = run_harness(
            CrashPoint(CRASH_COMMIT_EARLY), tear_tail=True
        )
        assert report.crashed
        assert report.recovery.torn_pages_dropped >= 1
        assert not report.interrupted_committed


class TestDeterminism:
    def test_same_crash_same_fingerprint(self):
        first_h, first_r = run_harness(CrashPoint(CRASH_APPEND, occurrence=6))
        second_h, second_r = run_harness(CrashPoint(CRASH_APPEND, occurrence=6))
        assert first_r.committed_statements == second_r.committed_statements
        assert first_h.state_fingerprint() == second_h.state_fingerprint()
        assert first_h.state_fingerprint()  # non-empty

    def test_different_crash_points_verify_independently(self):
        fingerprints = set()
        for occurrence in (1, 3, 5, 7):
            harness, report = run_harness(
                CrashPoint(CRASH_APPEND, occurrence=occurrence)
            )
            assert report.crashed
            fingerprints.add(harness.state_fingerprint())
        assert len(fingerprints) > 1  # the matrix explored distinct states


@pytest.mark.parametrize("occurrence", [1, 2, 4, 6, 8, 10])
def test_committed_exactly_across_append_sites(occurrence):
    __, report = run_harness(CrashPoint(CRASH_APPEND, occurrence=occurrence))
    assert report.crashed
    assert report.tables_verified == 1


@pytest.mark.parametrize("site,occurrence", [
    (CRASH_COMMIT_EARLY, 1),
    (CRASH_COMMIT_EARLY, 4),
    (CRASH_COMMIT_LATE, 2),
    (CRASH_COMMIT_LATE, 5),
    (CRASH_FORCE_PAGE, 1),
    (CRASH_FORCE_PAGE, 5),
])
def test_committed_exactly_across_commit_sites(site, occurrence):
    __, report = run_harness(CrashPoint(site, occurrence=occurrence))
    assert report.crashed
    assert report.tables_verified == 1
