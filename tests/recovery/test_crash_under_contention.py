"""Crash while lock queues are deep: blocked sessions die cleanly.

Every session hammers the same counter row, so at any group-commit force
most sessions are parked — either in the committing session's wake queue
or waiting on the hot row's lock.  Killing the server there must not
corrupt anything: recovery replays exactly the acknowledged statements,
and the increments commute, so the differential replay adjudication of
:class:`GroupCommitCrashHarness` applies unchanged.
"""

import pytest

from repro import Server, ServerConfig
from repro.recovery import CrashPoint, GroupCommitCrashHarness
from repro.storage.log import CRASH_GROUP_FORCE

SCHEMA = [
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
    "INSERT INTO accounts VALUES (1, 0), (2, 0)",
]


def hot_sessions(n_sessions=4, n_statements=4):
    # Commutative increments: any subset of the interrupted statements
    # surviving recovery is a legal state, which is exactly the contract
    # the harness verifies differentially.
    return [
        (
            "s%d" % k,
            ["UPDATE accounts SET balance = balance + 1 WHERE id = 1"]
            * n_statements,
        )
        for k in range(n_sessions)
    ]


def make_server():
    return Server(ServerConfig(start_buffer_governor=False))


def run_harness(occurrence, seed=7, **kwargs):
    harness = GroupCommitCrashHarness(
        make_server, SCHEMA, hot_sessions(),
        crash_point=CrashPoint(CRASH_GROUP_FORCE, occurrence),
        seed=seed, **kwargs,
    )
    report = harness.run()
    return harness, report


class TestCrashWithDeepLockQueues:
    def test_scenario_actually_queues(self):
        harness = GroupCommitCrashHarness(
            make_server, SCHEMA, hot_sessions(), crash_point=None, seed=7,
        )
        report = harness.run()
        assert not report.crashed
        assert harness.server.lock_manager.waits > 0
        assert harness.server.lock_manager.deadlocks == 0
        # All 16 commuting increments landed.
        rows = dict(
            harness.server.connect()
            .execute("SELECT id, balance FROM accounts").rows
        )
        assert rows[1] == 4 * 4

    @pytest.mark.parametrize("occurrence", [1, 2, 3, 5])
    def test_kill_mid_force_with_waiters_parked(self, occurrence):
        harness, report = run_harness(occurrence)
        assert report.crashed
        assert CRASH_GROUP_FORCE in report.crash_site
        # run() adjudicated: acked statements survived, interrupted ones
        # survived only as whole statements.
        assert report.tables_verified >= 1
        # Restarted server forgets the dead waiters entirely.
        assert harness.server.lock_manager.total_locks() == 0
        assert harness.server.lock_manager.waiting_count() == 0
        assert harness.server.versions.rows_versioned() == 0

    def test_torn_tail_under_contention(self):
        harness, report = run_harness(2, tear_tail=True)
        assert report.crashed
        assert report.tables_verified >= 1

    @pytest.mark.parametrize("occurrence", [2, 3])
    def test_same_seed_same_outcome(self, occurrence):
        first, __ = run_harness(occurrence, seed=11)
        second, __ = run_harness(occurrence, seed=11)
        assert first.state_fingerprint() == second.state_fingerprint()
        assert first.acked == second.acked
        assert first.survivors == second.survivors
        assert (
            first.scheduler.trace_lines() == second.scheduler.trace_lines()
        )
