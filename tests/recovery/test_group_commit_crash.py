"""Crash inside a batched group-commit force: the ack contract survives.

The :class:`GroupCommitCrashHarness` kills the server at the
``wal.group_force`` crash site — fired only by coordinator flushes, per
page — restarts it, and adjudicates every session's statements: the ones
whose ``execute`` returned (acknowledged) must survive recovery, and the
interrupted ones may survive only as whole statements that were in the
dying batch.
"""

import pytest

from repro import Server, ServerConfig
from repro.recovery import CrashPoint, GroupCommitCrashHarness
from repro.storage.log import CRASH_GROUP_FORCE, GroupCommitConfig

SCHEMA = [
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
    "CREATE INDEX ib ON accounts (balance)",
    "INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300)",
]


def make_sessions(n_sessions=3, n_statements=5):
    return [
        (
            "s%d" % k,
            [
                "INSERT INTO accounts VALUES (%d, %d)"
                % (100 * (k + 1) + i, 10 * k + i)
                for i in range(n_statements)
            ],
        )
        for k in range(n_sessions)
    ]


def make_server():
    return Server(ServerConfig(start_buffer_governor=False))


def run_harness(occurrence, seed=5, tear_tail=None, sessions=None):
    harness = GroupCommitCrashHarness(
        make_server, SCHEMA, sessions or make_sessions(),
        crash_point=CrashPoint(CRASH_GROUP_FORCE, occurrence),
        seed=seed, tear_tail=tear_tail,
    )
    report = harness.run()
    return harness, report


class TestCrashInBatchedForce:
    @pytest.mark.parametrize("occurrence", [1, 2, 3, 5, 8])
    def test_committed_exactly_at_each_occurrence(self, occurrence):
        harness, report = run_harness(occurrence)
        assert report.crashed
        assert CRASH_GROUP_FORCE in report.crash_site
        # run() already verified: no acknowledged commit lost, recovered
        # state equals reference + some subset of interrupted statements.
        assert report.tables_verified >= 1

    def test_acked_and_survivors_are_disjoint(self):
        harness, report = run_harness(4)
        acked = [sql for acks in harness.acked.values() for sql in acks]
        assert not set(acked) & set(harness.survivors)
        # Survivors only ever come from the statements in flight.
        inflight = set(filter(None, harness.inflight.values()))
        assert set(harness.survivors) <= inflight

    def test_torn_tail_still_committed_exactly(self):
        harness, report = run_harness(3, tear_tail=True)
        assert report.crashed
        assert report.tables_verified >= 1

    def test_no_crash_point_acks_everything(self):
        harness = GroupCommitCrashHarness(
            make_server, SCHEMA, make_sessions(), crash_point=None, seed=5
        )
        report = harness.run()
        assert not report.crashed
        assert harness.survivors == []
        assert all(sql is None for sql in harness.inflight.values())
        assert len(report.committed_statements) == 3 * 5

    def test_batched_forces_actually_happen(self):
        # The scenario must exercise a force covering several commits —
        # otherwise this file tests nothing beyond the single-connection
        # crash matrix.
        harness = GroupCommitCrashHarness(
            make_server, SCHEMA, make_sessions(n_statements=8),
            crash_point=None, seed=5,
        )
        harness.run()
        coordinator = harness.server.group_commit
        assert coordinator.batches < coordinator.committed


class TestDeterminism:
    @pytest.mark.parametrize("occurrence", [2, 5])
    def test_same_seed_same_fingerprint(self, occurrence):
        first, __ = run_harness(occurrence, seed=9)
        second, __ = run_harness(occurrence, seed=9)
        assert first.state_fingerprint() == second.state_fingerprint()
        assert first.survivors == second.survivors
        assert first.acked == second.acked

    def test_scheduler_trace_identical_across_runs(self):
        first, __ = run_harness(3, seed=9)
        second, __ = run_harness(3, seed=9)
        assert (
            first.scheduler.trace_lines() == second.scheduler.trace_lines()
        )


class TestWideWindowBatches:
    def test_crash_with_wide_fixed_window(self):
        # A generous window makes every session park, so the dying force
        # covers a genuinely multi-ticket batch.
        def factory():
            return Server(ServerConfig(
                start_buffer_governor=False,
                group_commit=GroupCommitConfig(max_window_us=10_000),
            ))

        harness = GroupCommitCrashHarness(
            factory, SCHEMA, make_sessions(n_sessions=4, n_statements=6),
            crash_point=CrashPoint(CRASH_GROUP_FORCE, 2), seed=13,
        )
        report = harness.run()
        assert report.crashed
        assert report.tables_verified >= 1
