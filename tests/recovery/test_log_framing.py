"""Durable log framing: checksummed pages, master record, torn tails."""

import pytest

from repro.common import SimClock
from repro.common.errors import IOFaultError
from repro.faults import FaultPlan
from repro.faults.plan import LOG_FORCE_ERROR, FaultRates
from repro.storage import FlashDisk, TransactionLog, Volume
from repro.storage.log import INSERT, RECORDS_PER_PAGE


@pytest.fixture
def volume():
    return Volume(FlashDisk(SimClock(), 10_000))


@pytest.fixture
def log_file(volume):
    return volume.create_file("txn.log")


def _fill(log, txn_id, rows, commit=True):
    log.begin(txn_id)
    for row in range(rows):
        log.log_change(txn_id, INSERT, "t", row, after=(txn_id, row))
    if commit:
        log.commit(txn_id)


class TestFraming:
    def test_forced_pages_are_framed_and_checksummed(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, RECORDS_PER_PAGE)  # > one page with BEGIN/COMMIT
        assert log_file.page_count >= 3  # master + 2 data pages
        for page_no in range(1, log_file.page_count):
            payload = log_file.read(page_no)
            assert set(payload) == {"first_lsn", "records", "checksum"}
            assert payload["records"]
        master = log_file.read(0)
        assert master["kind"] == "master"

    def test_open_round_trips_records_and_txn_state(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 5)
        log.begin(2)
        log.log_change(2, INSERT, "t", 9, after=(2, 9))
        log.force()  # durable but uncommitted: txn 2 is a loser

        reopened = TransactionLog.open(log_file)
        assert reopened.record_count() == log.durable_lsn + 1
        assert reopened.committed_txns() == {1}
        assert reopened.active_txns() == {2}
        original = log.loaded_records()[: reopened.record_count()]
        assert reopened.loaded_records() == original

    def test_unforced_tail_is_lost_on_open(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 3)
        durable = log.durable_lsn
        log.begin(2)
        log.log_change(2, INSERT, "t", 7, after=(2, 7))  # never forced

        reopened = TransactionLog.open(log_file)
        assert reopened.record_count() == durable + 1
        assert reopened.active_txns() == set()


class TestTornTail:
    def test_torn_page_detected_and_dropped(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 3)
        _fill(log, 2, 3)
        assert log.tear_last_page()

        reopened = TransactionLog.open(log_file)
        assert reopened.torn_pages_dropped >= 1
        # Whatever the tear destroyed is gone; earlier history survives
        # whole pages at a time.
        assert reopened.record_count() < log.record_count()
        assert 1 in reopened.committed_txns()

    def test_appends_after_torn_open_reuse_the_torn_slots(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 3)
        _fill(log, 2, 3)
        log.tear_last_page()
        pages_before = log_file.page_count

        reopened = TransactionLog.open(log_file)
        _fill(reopened, 3, 3)
        # The torn page was overwritten in place, not leaked as a hole.
        assert log_file.page_count <= pages_before + 1
        final = TransactionLog.open(log_file)
        assert 3 in final.committed_txns()

    def test_lsn_stays_monotonic_across_torn_reopen(self, log_file):
        """Records destroyed by a tear must not resurrect: LSNs continue
        from the surviving durable prefix and the replaced page wins."""
        log = TransactionLog(log_file)
        _fill(log, 1, 3)
        _fill(log, 2, 3)
        log.tear_last_page()
        reopened = TransactionLog.open(log_file)
        resume_lsn = reopened.peek_next_lsn()
        assert resume_lsn == reopened.durable_lsn + 1
        _fill(reopened, 3, 1)
        final = TransactionLog.open(log_file)
        lsns = [record.lsn for record in final.loaded_records()]
        assert lsns == sorted(lsns)
        assert len(lsns) == len(set(lsns))


class TestMasterRecord:
    def test_open_scans_from_last_complete_checkpoint(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 40)
        log.checkpoint()
        _fill(log, 2, 5)

        reopened = TransactionLog.open(log_file)
        # The scan started at the master's checkpoint page: the loaded
        # window is partial history.
        assert reopened.base_lsn > 0
        assert reopened.last_checkpoint is not None
        assert 2 in reopened.committed_txns()

    def test_full_scan_loads_everything(self, log_file):
        log = TransactionLog(log_file)
        _fill(log, 1, 40)
        log.checkpoint()
        _fill(log, 2, 5)

        full = TransactionLog.open(log_file, full_scan=True)
        assert full.base_lsn == 0
        assert full.committed_txns() == {1, 2}


class TestForceFaults:
    def test_force_error_exhausts_retry_budget(self, log_file):
        rates = FaultRates(log_force_error=1.0)
        plan = FaultPlan(11, rates=rates).bind(SimClock())
        log = TransactionLog(log_file, fault_plan=plan)
        log.begin(1)
        log.log_change(1, INSERT, "t", 0, after=(1,))
        with pytest.raises(IOFaultError):
            log.commit(1)
        # The failed commit leaves the transaction active and retryable.
        assert 1 in log.active_txns()
        assert 1 not in log.committed_txns()
        assert plan.retries == rates.io_retry_limit

    def test_site_budget_bounds_the_injections(self, log_file):
        rates = FaultRates(log_force_error=1.0)
        plan = FaultPlan(11, rates=rates, budgets={LOG_FORCE_ERROR: 2})
        plan.bind(SimClock())
        log = TransactionLog(log_file, fault_plan=plan)
        _fill(log, 1, 3)  # commit succeeds once the budget is exhausted
        assert plan.injected == 2
        assert plan.retries == 2
        assert plan.site_budget_remaining(LOG_FORCE_ERROR) == 0
        assert 1 in log.committed_txns()
