"""Restart recovery: analysis/redo/undo over a real server."""

import pytest

from repro import Server, ServerConfig


@pytest.fixture
def server():
    return Server(ServerConfig(start_buffer_governor=False))


@pytest.fixture
def conn(server):
    connection = server.connect()
    yield connection
    if server.running:
        connection.close()


def _rows(conn, sql="SELECT id, v FROM t ORDER BY id"):
    return list(conn.execute(sql))


class TestRestart:
    def test_committed_survive_loser_aborted(self, server, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (3, 'lost')")
        conn.execute("UPDATE t SET v = 'mut' WHERE id = 1")
        server.txn_log.force()  # durable but uncommitted: a loser
        server.crash()
        report = server.restart()
        conn._txn_id = None  # the transaction died with the process
        assert report.losers_aborted == 1
        assert report.undo_records == 2
        assert _rows(conn) == [(1, "a"), (2, "b")]

    def test_unforced_loser_costs_no_undo(self, server, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a')")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (2, 'volatile')")
        server.crash()  # the loser's records never reached the device
        report = server.restart()
        conn._txn_id = None
        assert report.losers_aborted == 0
        assert report.undo_records == 0
        assert _rows(conn) == [(1, "a")]

    def test_runtime_rollback_replays_cleanly(self, server, conn):
        """CLR-lite: redo-all-history reproduces a rolled-back state."""
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 'x' WHERE id = 1")
        conn.execute("DELETE FROM t WHERE id = 2")
        conn.execute("ROLLBACK")
        conn.execute("INSERT INTO t VALUES (3, 'c')")
        server.txn_log.force()
        server.crash()
        server.restart()
        assert _rows(conn) == [(1, "a"), (2, "b"), (3, "c")]

    def test_indexes_rebuilt_and_consistent(self, server, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("CREATE INDEX iv ON t (v)")
        for i in range(40):
            conn.execute(
                "INSERT INTO t VALUES (?, ?)", params=[i, "v%02d" % i]
            )
        conn.execute("DELETE FROM t WHERE id = 7")
        server.crash()
        report = server.restart()
        assert report.indexes_rebuilt == 2  # pk + iv
        table = server.catalog.table("t")
        for index in server.catalog.indexes_on("t"):
            entries = sorted(
                (tuple(key), row_id)
                for key, row_id in index.btree.range_scan()
            )
            heap = sorted(
                (
                    tuple(
                        row[table.column_index(c)]
                        for c in index.column_names
                    ),
                    row_id,
                )
                for row_id, row in table.storage.scan()
            )
            assert entries == heap
        rows = _rows(conn, "SELECT id FROM t WHERE v = 'v05'")
        assert rows == [(5,)]

    def test_report_and_metrics_published(self, server, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a')")
        server.crash()
        report = server.restart()
        assert report.log_records_scanned > 0
        assert report.tables_rebuilt == 1
        assert report.duration_us >= 0
        assert server.metrics.value("recovery.runs") == 1
        assert (
            server.metrics.value("recovery.last_records_scanned")
            == report.log_records_scanned
        )
        assert server.metrics.value("recovery.redo_records") == report.redo_records

    def test_recovery_checkpoint_bounds_the_next_restart(self, server, conn):
        """Recovery ends with a checkpoint: a second crash right after
        restart replays (almost) nothing."""
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        for i in range(30):
            conn.execute("INSERT INTO t VALUES (?, 'x')", params=[i])
        server.crash()
        first = server.restart()
        server.crash()
        second = server.restart()
        assert second.redo_applied == 0
        assert second.log_records_scanned < first.log_records_scanned
        assert _rows(conn, "SELECT COUNT(*) FROM t") == [(30,)]

    def test_loser_overlapping_checkpoint_forces_full_rescan(
        self, server, conn
    ):
        """A loser active at CKPT_BEGIN may have pre-checkpoint changes:
        analysis must widen the scan to the whole log to undo them."""
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a')")
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 'dirty' WHERE id = 1")
        server.checkpoint()  # loser is in the checkpoint's active set
        conn.execute("INSERT INTO t VALUES (2, 'also-lost')")
        server.txn_log.force()
        server.crash()
        report = server.restart()
        conn._txn_id = None
        assert report.full_rescan
        assert report.losers_aborted == 1
        assert _rows(conn) == [(1, "a")]

    def test_crash_mid_update_then_more_commits(self, server, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        server.simulate_crash_and_recover()
        conn.execute("UPDATE t SET v = 'z' WHERE id = 2")
        conn.execute("DELETE FROM t WHERE id = 3")
        server.simulate_crash_and_recover()
        assert _rows(conn) == [(1, "a"), (2, "z")]
