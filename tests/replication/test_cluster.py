"""Cluster-level log shipping: standby reads, lag, archive-and-restore.

These tests drive the :class:`ReplicatedCluster` without a workload
scheduler — DML runs on the primary connection, ``sync()`` pumps the
stream, and the replicas are inspected directly.
"""

from repro.engine.server import ServerConfig
from repro.faults.plan import FaultPlan, FaultRates
from repro.replication import ReplicatedCluster, ReplicationConfig

SCHEMA = ["CREATE TABLE t (id INT PRIMARY KEY, v INT)"]
ROWS = [(i, i * 10) for i in range(10)]


def make_cluster(n_replicas=1, seed=3, sync_ack=True, **rates):
    plan = FaultPlan(seed, rates=FaultRates(**rates))
    config = ServerConfig(
        replication=ReplicationConfig(
            n_replicas=n_replicas, sync_ack=sync_ack
        ),
        fault_plan=plan,
        start_buffer_governor=False,
        start_checkpoint_governor=False,
    )
    cluster = ReplicatedCluster(config)
    cluster.execute_schema(SCHEMA)
    cluster.load_table("t", ROWS)
    return cluster


def replica_rows(replica, sql="SELECT id, v FROM t"):
    conn = replica.server.connect()
    try:
        return sorted(conn.execute(sql).rows)
    finally:
        conn.close()


class TestShipping:
    def test_dml_ships_and_replica_serves_snapshot_reads(self):
        cluster = make_cluster()
        conn = cluster.connect()
        conn.execute("UPDATE t SET v = 999 WHERE id = 3")
        conn.execute("INSERT INTO t VALUES (100, 1)")
        cluster.sync()
        replica = cluster.replicas[0]
        rows = dict(replica_rows(replica))
        assert rows[3] == 999
        assert rows[100] == 1
        assert replica.applied_lsn == replica.received_lsn
        assert replica.lag_lsn() == 0

    def test_standby_index_scans_route_through_the_heap_fallback(self):
        cluster = make_cluster()
        conn = cluster.connect()
        conn.execute("UPDATE t SET v = 5 WHERE id = 5")
        cluster.sync()
        replica = cluster.replicas[0]
        counter = replica.server.metrics.counter("exec.adaptive_fallbacks")
        before = counter.value
        # Sargable point query: the plan picks the pk index, but standby
        # B-trees are never maintained by heap-only redo — the scan must
        # take the exact heap path.
        assert replica_rows(replica, "SELECT v FROM t WHERE id = 5") == [(5,)]
        assert counter.value == before + 1

    def test_latency_delays_visibility_not_durability(self):
        cluster = make_cluster(
            net_latency_min_us=50_000, net_latency_max_us=80_000
        )
        conn = cluster.connect()
        conn.execute("UPDATE t SET v = 7 WHERE id = 7")
        replica = cluster.replicas[0]
        # The commit acked, so the frames are durably mirrored...
        assert replica.received_lsn >= cluster.primary.txn_log.durable_lsn
        # ...but their apply arrival is still in flight.
        assert replica.lag_lsn() > 0
        assert not replica.has_deliverable()
        arrival = replica.next_arrival_us()
        cluster.clock.advance(arrival - cluster.clock.now)
        replica.apply_pending()
        assert replica.lag_lsn() == 0
        assert dict(replica_rows(replica))[7] == 7

    def test_lag_probes_are_registered(self):
        cluster = make_cluster()
        metrics = cluster.replicas[0].server.metrics
        for name in ("repl.lag_lsn", "repl.lag_us", "repl.apply_rate"):
            assert name in metrics.names()
            assert metrics.value(name) >= 0
        primary = cluster.primary.metrics
        assert primary.value("repl.frames_published") > 0
        assert primary.value("repl.acked_lsn") >= 0

    def test_sync_ack_gates_the_commit_through_a_partition(self):
        cluster = make_cluster()
        link = cluster.network.links[0]
        heal_at = link.partition(30_000)
        conn = cluster.connect()
        conn.execute("UPDATE t SET v = 1 WHERE id = 1")  # autocommit acks
        # The only path to an ack was waiting out the partition: the
        # simulated clock stands at (or past) the heal time and the
        # replica durably holds the commit.
        assert cluster.clock.now >= heal_at
        assert cluster.publisher.sync_stalls >= 1
        replica = cluster.replicas[0]
        assert replica.received_lsn >= cluster.primary.txn_log.durable_lsn


class TestArchiveAndRestore:
    """One replica, primary abandoned wholesale: log shipping degenerates
    to continuous archive-and-restore."""

    def test_promotion_recovers_every_committed_row(self):
        cluster = make_cluster(n_replicas=1)
        conn = cluster.connect()
        for i in range(20):
            conn.execute("INSERT INTO t VALUES (%d, %d)" % (200 + i, i))
        cluster.sync()
        promoted = cluster.fail_over()
        assert promoted.promoted
        rows = replica_rows(promoted)
        assert len(rows) == len(ROWS) + 20
        assert cluster.controller.failover_us >= 0

    def test_promotion_rebuilds_trustworthy_indexes(self):
        cluster = make_cluster(n_replicas=1)
        conn = cluster.connect()
        conn.execute("DELETE FROM t WHERE id = 4")
        cluster.sync()
        promoted = cluster.fail_over()
        index = promoted.server.catalog.index("pk_t")
        # Restart recovery rebuilt the tree from committed state: the
        # standby's blanket fallback flag is gone and fresh snapshots use
        # the exact index path again.
        assert index.always_fallback is False
        assert index.delete_stamps == {}
        counter = promoted.server.metrics.counter("exec.adaptive_fallbacks")
        before = counter.value
        assert replica_rows(promoted, "SELECT v FROM t WHERE id = 5") == [(50,)]
        assert counter.value == before

    def test_two_replicas_promote_the_max_applied(self):
        cluster = make_cluster(n_replicas=2)
        conn = cluster.connect()
        conn.execute("UPDATE t SET v = 42 WHERE id = 2")
        cluster.sync()
        # Starve replica-2 of the last frames: rewind its cursor target by
        # partitioning it, then ship one more commit.
        cluster.network.links[1].partition(10_000_000)
        conn.execute("UPDATE t SET v = 43 WHERE id = 2")
        best = max(cluster.replicas, key=lambda r: r.received_lsn)
        promoted = cluster.fail_over()
        assert promoted is best
        assert dict(replica_rows(promoted))[2] == 43
