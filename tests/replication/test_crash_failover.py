"""The replicated crash matrix: kill the primary mid-force, fail over.

Every case runs the full :class:`ReplicatedCrashHarness` oracle — zero
acknowledged loss, no invented commits, and committed-exactly against a
fresh single-node reference replay — under seeded network chaos (frame
drops, latency spread, partition onsets).  The determinism case runs one
seed twice and requires the scheduler trace, the fault-plan log, and the
promoted node's physical page images to match byte for byte.
"""

import pytest

from repro.engine.server import ServerConfig
from repro.faults.plan import FaultPlan, FaultRates
from repro.recovery import CrashPoint
from repro.replication import (
    ReplicatedCrashHarness,
    ReplicationConfig,
    state_fingerprint,
)
from repro.storage.log import CRASH_GROUP_FORCE

SCHEMA = ["CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)"]
LOADS = [("accounts", [(i, 100 * i) for i in range(8)])]

#: Network chaos armed on every matrix run: drops force retransmits,
#: latency staggers apply arrival, partitions stall the ack gate.
CHAOS = dict(
    net_send_drop=0.10,
    net_partition=0.02,
    net_latency_min_us=50,
    net_latency_max_us=400,
)


def make_sessions(n_sessions=3, n_statements=6):
    return [
        (
            "s%d" % k,
            [
                "INSERT INTO accounts VALUES (%d, %d)"
                % (100 * (k + 1) + i, 10 * k + i)
                for i in range(n_statements)
            ],
        )
        for k in range(n_sessions)
    ]


def make_config(seed, n_replicas=2, **rates):
    merged = dict(CHAOS)
    merged.update(rates)
    return ServerConfig(
        replication=ReplicationConfig(n_replicas=n_replicas),
        fault_plan=FaultPlan(seed, rates=FaultRates(**merged)),
        start_buffer_governor=False,
        start_checkpoint_governor=False,
    )


def run_matrix(seed, occurrence=3, **kwargs):
    harness = ReplicatedCrashHarness(
        make_config(seed, n_replicas=kwargs.pop("n_replicas", 2)),
        SCHEMA, LOADS, make_sessions(),
        crash_point=CrashPoint(CRASH_GROUP_FORCE, occurrence),
        seed=seed, **kwargs,
    )
    report = harness.run()
    return harness, report


class TestKillPrimaryInsideGroupForce:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_failover_is_committed_exactly(self, seed):
        harness, report = run_matrix(seed)
        assert report.crashed
        assert CRASH_GROUP_FORCE in report.crash_site
        assert report.promoted_name
        assert report.failover_us >= 0
        # run() already enforced the oracle; the report carries the scope.
        assert report.tables_verified >= 1
        assert report.rows_verified >= len(LOADS[0][1])

    def test_acked_and_survivors_are_disjoint(self):
        harness, report = run_matrix(101)
        acked = [sql for sql, __ in report.acked_statements]
        assert not set(acked) & set(report.survivors)
        inflight = set(filter(None, harness.inflight.values()))
        assert set(report.survivors) <= inflight


class TestTornReplicationTail:
    def test_spare_with_a_torn_tail_cannot_poison_the_election(self):
        harness, report = run_matrix(101, tear_spare_tail=True)
        assert report.crashed
        assert report.torn_replica is not None
        assert report.torn_replica != report.promoted_name
        assert report.tables_verified >= 1

    def test_torn_spare_recovers_its_own_committed_prefix(self):
        harness, report = run_matrix(202, tear_spare_tail=True)
        promoted = harness.cluster.controller.promoted
        spare = next(
            r for r in harness.cluster.replicas
            if r.name == report.torn_replica
        )
        # Per-link reception is gap-free in LSN order, so the spare holds
        # a prefix of what the winner holds — recovering it independently
        # (its torn last page is dropped like any torn primary tail) must
        # yield a committed subset of the promoted node's.
        spare.promote()
        assert spare.committed <= promoted.committed


class TestPartitionDuringFailover:
    def test_election_waits_out_the_partition(self):
        stall_us = 50_000

        def partition_everything(cluster):
            for link in cluster.network.links:
                link.partition(stall_us)

        harness, report = run_matrix(
            303, before_failover=partition_everything
        )
        assert report.crashed
        # The controller cannot read a partitioned replica's state: the
        # heal wait is real failover latency.
        assert report.failover_us >= stall_us
        assert report.tables_verified >= 1


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        def one_run(seed):
            harness, report = run_matrix(seed, tear_spare_tail=True)
            promoted = harness.cluster.controller.promoted
            return (
                harness.scheduler.trace_lines(),
                harness.cluster.primary.fault_plan.log_lines(),
                state_fingerprint(promoted.server),
                report.promoted_name,
                [sql for sql, __ in report.acked_statements],
                sorted(report.survivors),
            )

        assert one_run(101) == one_run(101)

    def test_different_seeds_diverge(self):
        ha, __ = run_matrix(101)
        hb, __ = run_matrix(202)
        # The coarse outcome may coincide; the seeded draw streams (and
        # with them the fault log) must not.
        assert (
            ha.cluster.primary.fault_plan.log_lines()
            != hb.cluster.primary.fault_plan.log_lines()
        )


class TestNoCrashArchive:
    def test_workload_completes_and_promotion_keeps_everything(self):
        harness = ReplicatedCrashHarness(
            make_config(101, n_replicas=1),
            SCHEMA, LOADS, make_sessions(),
            crash_point=None, seed=101,
        )
        report = harness.run()
        assert not report.crashed
        assert len(report.acked_statements) == 3 * 6
        assert report.survivors == []
        assert report.tables_verified >= 1
