"""Unit tests for the shipping pieces: links, publisher, replica receive.

The network's delivery contract is what makes failover safe: per-link
reception is gap-free in LSN order (a failed send parks the cursor and
the frame is retransmitted), latency delays apply *visibility* but never
durable receipt, and every draw comes from a per-link seeded substream so
same-seed runs ship byte-identical schedules.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import IOFaultError
from repro.faults.plan import FaultPlan, FaultRates
from repro.replication import (
    LogStreamPublisher,
    ReplicationFrame,
    SimNetwork,
)


class StubReceiver:
    """Records (first_lsn, arrival_us) pairs like a replica would."""

    def __init__(self):
        self.received = []

    def receive(self, frame, arrival_us):
        self.received.append((frame.first_lsn, arrival_us))


def make_frame(n, lsn, records=4):
    return ReplicationFrame(n, lsn, {"records": [None] * records})


def make_plan(seed=7, **rates):
    return FaultPlan(seed, rates=FaultRates(**rates))


class TestNetworkLink:
    def test_arrivals_are_non_decreasing_per_link(self):
        clock = SimClock()
        plan = make_plan(net_latency_min_us=50, net_latency_max_us=400)
        network = SimNetwork(clock, fault_plan=plan)
        link = network.link("primary->r1", StubReceiver())
        arrivals = []
        lsn = 0
        for n in range(20):
            arrivals.append(link.send(make_frame(n, lsn)))
            lsn += 4
            clock.advance(10)  # sends outpace the latency spread
        assert all(a is not None for a in arrivals)
        assert arrivals == sorted(arrivals)

    def test_drop_fails_the_send_and_counts(self):
        clock = SimClock()
        plan = make_plan(net_send_drop=1.0)
        network = SimNetwork(clock, fault_plan=plan)
        receiver = StubReceiver()
        link = network.link("primary->r1", receiver)
        assert link.send(make_frame(0, 0)) is None
        assert link.drops == 1
        assert receiver.received == []

    def test_forced_partition_blocks_until_heal(self):
        clock = SimClock()
        network = SimNetwork(clock, fault_plan=make_plan())
        receiver = StubReceiver()
        link = network.link("primary->r1", receiver)
        heal_at = link.partition(10_000)
        assert link.send(make_frame(0, 0)) is None
        assert receiver.received == []
        clock.advance(heal_at - clock.now)
        assert link.send(make_frame(0, 0)) is not None
        assert [lsn for lsn, __ in receiver.received] == [0]

    def test_duplicate_link_names_rejected(self):
        network = SimNetwork(SimClock(), fault_plan=make_plan())
        network.link("primary->r1", StubReceiver())
        with pytest.raises(ValueError):
            network.link("primary->r1", StubReceiver())

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            clock = SimClock()
            plan = make_plan(
                seed=seed, net_send_drop=0.2,
                net_latency_min_us=50, net_latency_max_us=400,
            )
            network = SimNetwork(clock, fault_plan=plan)
            receiver = StubReceiver()
            link = network.link("primary->r1", receiver)
            lsn = 0
            for n in range(30):
                if link.send(make_frame(n, lsn)) is not None:
                    lsn += 4
                clock.advance(25)
            return receiver.received

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)


class TestPublisher:
    def make(self, **rates):
        clock = SimClock()
        plan = make_plan(**rates)
        network = SimNetwork(clock, fault_plan=plan)
        publisher = LogStreamPublisher(clock, fault_plan=plan)
        receiver = StubReceiver()
        link = publisher.attach(network.link("primary->r1", receiver))
        return clock, publisher, link, receiver

    def test_tap_ships_immediately_when_healthy(self):
        __, publisher, link, receiver = self.make()
        publisher.tap(1, 0, {"records": [None] * 4})
        assert publisher.link_cursor(link) == 1
        assert [lsn for lsn, __ in receiver.received] == [0]
        assert publisher.acked_lsn() == 3

    def test_failed_send_parks_the_cursor_and_resends_in_order(self):
        clock, publisher, link, receiver = self.make()
        heal_at = link.partition(5_000)
        publisher.tap(1, 0, {"records": [None] * 4})
        publisher.tap(2, 4, {"records": [None] * 4})
        assert publisher.link_cursor(link) == 0
        assert publisher.acked_lsn() == -1
        clock.advance(heal_at - clock.now)
        assert publisher.pump() == 2
        assert [lsn for lsn, __ in receiver.received] == [0, 4]

    def test_ensure_acked_stalls_through_a_partition(self):
        clock, publisher, link, receiver = self.make()
        link.partition(3_000)
        publisher.tap(1, 0, {"records": [None] * 4})
        assert publisher.acked_lsn() == -1
        acked = publisher.ensure_acked(3)
        assert acked >= 3
        assert publisher.sync_stalls >= 1
        assert clock.now >= 3_000  # the clock jumped to the heal

    def test_ensure_acked_gives_up_typed_after_the_retry_budget(self):
        clock, publisher, link, receiver = self.make(net_send_drop=1.0)
        publisher.tap(1, 0, {"records": [None] * 4})
        with pytest.raises(IOFaultError):
            publisher.ensure_acked(3)
