"""Unit tests for the binder."""

import pytest

from repro.catalog import Catalog, Column, ProcedureSchema, TableSchema
from repro.common.errors import CatalogError, SqlTypeError
from repro.sql import Binder, parse_statement
from repro.sql.binder import (
    BoundDelete,
    BoundInsert,
    BoundUpdate,
    GroupRef,
    Quantifier,
)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table(TableSchema(
        "emp",
        [
            Column("id", "INT", nullable=False),
            Column("name", "VARCHAR"),
            Column("dept_id", "INT"),
            Column("salary", "DOUBLE"),
        ],
        primary_key=("id",),
    ))
    cat.add_table(TableSchema(
        "dept",
        [Column("id", "INT", nullable=False), Column("dname", "VARCHAR")],
        primary_key=("id",),
    ))
    cat.add_procedure(ProcedureSchema(
        "high_earners", ("threshold",),
        "SELECT id, name FROM emp WHERE salary > 100000",
    ))
    return cat


def bind(catalog, sql):
    return Binder(catalog).bind(parse_statement(sql))


class TestBasicBinding:
    def test_column_resolution(self, catalog):
        block = bind(catalog, "SELECT name FROM emp")
        expr = block.select_items[0][0]
        assert expr.bound
        assert expr.column_index == 1
        assert expr.type_name == "VARCHAR"

    def test_qualified_column(self, catalog):
        block = bind(catalog, "SELECT e.salary FROM emp e")
        assert block.select_items[0][0].column_index == 3

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT bogus FROM emp")

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            bind(catalog, "SELECT a FROM ghost")

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT id FROM emp, dept")

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT 1 FROM emp e, dept e")

    def test_star_expansion(self, catalog):
        block = bind(catalog, "SELECT * FROM emp")
        assert [name for __, name, __t in block.select_items] == [
            "id", "name", "dept_id", "salary",
        ]

    def test_qualified_star(self, catalog):
        block = bind(catalog, "SELECT d.* FROM emp e, dept d")
        assert len(block.select_items) == 2

    def test_output_types(self, catalog):
        block = bind(catalog, "SELECT salary * 2 AS double_pay FROM emp")
        assert block.select_items[0][1] == "double_pay"
        assert block.select_items[0][2] == "DOUBLE"


class TestConjuncts:
    def test_where_split_on_and(self, catalog):
        block = bind(
            catalog,
            "SELECT 1 FROM emp WHERE salary > 10 AND dept_id = 3 AND name = 'x'",
        )
        assert len(block.conjuncts) == 3
        assert all(not c.is_join for c in block.conjuncts)

    def test_join_conjunct_refs(self, catalog):
        block = bind(
            catalog,
            "SELECT 1 FROM emp e, dept d WHERE e.dept_id = d.id",
        )
        join = block.conjuncts[0]
        assert join.is_join
        assert join.equi is not None

    def test_inner_join_on_becomes_conjunct(self, catalog):
        block = bind(
            catalog,
            "SELECT 1 FROM emp e JOIN dept d ON e.dept_id = d.id",
        )
        assert len(block.conjuncts) == 1
        assert block.conjuncts[0].is_join

    def test_or_stays_single_conjunct(self, catalog):
        block = bind(
            catalog, "SELECT 1 FROM emp WHERE salary > 10 OR dept_id = 3"
        )
        assert len(block.conjuncts) == 1


class TestOuterJoins:
    def test_left_join_constraints(self, catalog):
        block = bind(
            catalog,
            "SELECT 1 FROM emp e LEFT OUTER JOIN dept d ON e.dept_id = d.id",
        )
        dept_q = block.quantifiers[1]
        emp_q = block.quantifiers[0]
        assert dept_q.join_type == Quantifier.LEFT
        assert emp_q.id in dept_q.required_predecessors
        assert len(dept_q.on_conjuncts) == 1
        assert len(block.conjuncts) == 0  # ON stays attached, not WHERE


class TestSubqueryUnnesting:
    def test_in_subquery_becomes_semi_join(self, catalog):
        block = bind(
            catalog,
            "SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept)",
        )
        assert len(block.quantifiers) == 2
        semi = block.quantifiers[1]
        assert semi.join_type == Quantifier.SEMI
        assert semi.kind == Quantifier.DERIVED
        assert len(semi.on_conjuncts) == 1
        assert semi.on_conjuncts[0].equi is not None

    def test_not_in_becomes_anti_join(self, catalog):
        block = bind(
            catalog,
            "SELECT name FROM emp WHERE dept_id NOT IN (SELECT id FROM dept)",
        )
        assert block.quantifiers[1].join_type == Quantifier.ANTI

    def test_correlated_exists(self, catalog):
        block = bind(
            catalog,
            "SELECT dname FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)",
        )
        semi = block.quantifiers[1]
        assert semi.join_type == Quantifier.SEMI
        # The correlated predicate was lifted to the semi-join.
        assert len(semi.on_conjuncts) == 1
        lifted = semi.on_conjuncts[0]
        assert block.quantifiers[0].id in lifted.refs
        assert semi.id in lifted.refs

    def test_uncorrelated_exists_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT 1 FROM dept WHERE EXISTS (SELECT 1 FROM emp)")

    def test_in_subquery_with_local_filter(self, catalog):
        block = bind(
            catalog,
            "SELECT name FROM emp WHERE dept_id IN "
            "(SELECT id FROM dept WHERE dname LIKE 'R%')",
        )
        semi = block.quantifiers[1]
        # The local LIKE filter stays inside the subquery block.
        assert len(semi.block.conjuncts) == 1

    def test_semi_join_invisible_to_star(self, catalog):
        block = bind(
            catalog,
            "SELECT * FROM emp WHERE dept_id IN (SELECT id FROM dept)",
        )
        assert len(block.select_items) == 4  # only emp's columns


class TestAggregation:
    def test_group_by_rewrites_to_group_refs(self, catalog):
        block = bind(
            catalog,
            "SELECT dept_id, COUNT(*), AVG(salary) FROM emp GROUP BY dept_id",
        )
        assert len(block.group_keys) == 1
        assert len(block.aggregates) == 2
        for expr, __, __t in block.select_items:
            assert isinstance(expr, GroupRef)
        indexes = [expr.index for expr, __, __t in block.select_items]
        assert indexes == [0, 1, 2]

    def test_aggregate_without_group_by(self, catalog):
        block = bind(catalog, "SELECT COUNT(*) FROM emp")
        assert block.is_aggregate
        assert block.group_keys == []

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT name, COUNT(*) FROM emp GROUP BY dept_id")

    def test_having_bound_over_group_refs(self, catalog):
        block = bind(
            catalog,
            "SELECT dept_id FROM emp GROUP BY dept_id HAVING COUNT(*) > 5",
        )
        assert len(block.having_conjuncts) == 1

    def test_having_without_group_rejected(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "SELECT id FROM emp HAVING id > 5")

    def test_order_by_aggregate(self, catalog):
        block = bind(
            catalog,
            "SELECT dept_id FROM emp GROUP BY dept_id ORDER BY SUM(salary) DESC",
        )
        expr, ascending = block.order_by[0]
        assert isinstance(expr, GroupRef)
        assert ascending is False


class TestDerivedAndProcedures:
    def test_derived_table(self, catalog):
        block = bind(
            catalog,
            "SELECT top.name FROM (SELECT name FROM emp WHERE salary > 10) AS top",
        )
        derived = block.quantifiers[0]
        assert derived.kind == Quantifier.DERIVED
        assert derived.columns == [("name", "VARCHAR")]

    def test_procedure_table(self, catalog):
        block = bind(
            catalog, "SELECT h.name FROM high_earners(100000) AS h"
        )
        proc = block.quantifiers[0]
        assert proc.kind == Quantifier.PROCEDURE
        assert proc.procedure.name == "high_earners"
        assert len(proc.procedure_args) == 1

    def test_recursive_cte(self, catalog):
        block = bind(
            catalog,
            "WITH RECURSIVE seq(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM seq WHERE n < 10"
            ") SELECT n FROM seq",
        )
        assert block.with_recursive is not None
        assert block.quantifiers[0].kind == Quantifier.RECURSIVE_REF


class TestDmlBinding:
    def test_insert(self, catalog):
        bound = bind(catalog, "INSERT INTO emp (id, name) VALUES (1, 'ann')")
        assert isinstance(bound, BoundInsert)
        assert bound.column_indexes == [0, 1]

    def test_insert_arity_mismatch(self, catalog):
        with pytest.raises(SqlTypeError):
            bind(catalog, "INSERT INTO emp (id, name) VALUES (1)")

    def test_insert_select(self, catalog):
        bound = bind(catalog, "INSERT INTO dept (id, dname) SELECT id, name FROM emp")
        assert bound.select_block is not None

    def test_update(self, catalog):
        bound = bind(catalog, "UPDATE emp SET salary = salary * 1.1 WHERE dept_id = 2")
        assert isinstance(bound, BoundUpdate)
        assert bound.assignments[0][0] == 3
        assert len(bound.conjuncts) == 1

    def test_delete(self, catalog):
        bound = bind(catalog, "DELETE FROM emp WHERE salary < 0")
        assert isinstance(bound, BoundDelete)
        assert bound.table.name == "emp"
