"""Unit tests for the SQL lexer."""

import pytest

from repro.common.errors import SqlParseError
from repro.sql import tokenize
from repro.sql.lexer import parse_date_literal


def kinds(text):
    return [(token.kind, token.value) for token in tokenize(text)]


def test_keywords_case_insensitive():
    assert kinds("select")[0] == ("keyword", "SELECT")
    assert kinds("SeLeCt")[0] == ("keyword", "SELECT")


def test_identifiers_preserve_case():
    assert kinds("myTable")[0] == ("ident", "myTable")


def test_numbers():
    assert kinds("42")[0] == ("number", 42)
    assert kinds("3.5")[0] == ("number", 3.5)
    assert kinds("1e3")[0] == ("number", 1000.0)
    assert kinds("2.5e-2")[0] == ("number", 0.025)


def test_strings_with_escapes():
    assert kinds("'hello'")[0] == ("string", "hello")
    assert kinds("'it''s'")[0] == ("string", "it's")


def test_unterminated_string_rejected():
    with pytest.raises(SqlParseError):
        tokenize("'oops")


def test_operators():
    values = [v for k, v in kinds("a <= b <> c != d || e")]
    assert "<=" in values and "<>" in values and "!=" in values and "||" in values


def test_comments_skipped():
    tokens = kinds("SELECT -- a comment\n 1")
    assert ("number", 1) in tokens


def test_quoted_identifier():
    assert kinds('"Weird Name"')[0] == ("ident", "Weird Name")


def test_unexpected_character():
    with pytest.raises(SqlParseError):
        tokenize("SELECT @")


def test_eof_token():
    assert kinds("")[-1] == ("eof", None)


def test_date_literal_parsing():
    import datetime
    assert parse_date_literal("2007-04-15") == datetime.date(2007, 4, 15)
    with pytest.raises(SqlParseError):
        parse_date_literal("not-a-date")
