"""Unit tests for the SQL parser."""

import datetime

import pytest

from repro.common.errors import SqlParseError
from repro.sql import ast, parse_statement


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.select_items) == 1
        assert isinstance(stmt.from_tables[0], ast.BaseTable)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.select_items[0][0], ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.select_items[0][0].table_alias == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.select_items[0][1] == "x"
        assert stmt.select_items[1][1] == "y"
        assert stmt.from_tables[0].alias == "u"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t WHERE b > 5 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is False  # DESC
        assert stmt.limit == 10

    def test_comma_joins(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert len(stmt.from_tables) == 3

    def test_explicit_inner_join(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.from_tables[0]
        assert isinstance(join, ast.JoinExpr)
        assert join.join_type == ast.JoinExpr.INNER
        assert join.condition is not None

    def test_left_outer_join(self):
        stmt = parse_statement(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y"
        )
        assert stmt.from_tables[0].join_type == ast.JoinExpr.LEFT

    def test_left_join_shorthand(self):
        stmt = parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.from_tables[0].join_type == ast.JoinExpr.LEFT

    def test_cross_join(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_tables[0].join_type == ast.JoinExpr.CROSS

    def test_chained_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_tables[0]
        assert isinstance(outer.left, ast.JoinExpr)

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT a FROM t) AS d")
        derived = stmt.from_tables[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "d"

    def test_procedure_in_from(self):
        stmt = parse_statement("SELECT * FROM get_orders(42) AS o")
        proc = stmt.from_tables[0]
        assert isinstance(proc, ast.ProcedureTable)
        assert proc.name == "get_orders"
        assert len(proc.args) == 1

    def test_with_recursive(self):
        stmt = parse_statement(
            "WITH RECURSIVE r(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5"
            ") SELECT n FROM r"
        )
        assert stmt.with_recursive is not None
        assert stmt.with_recursive.column_names == ("n",)


class TestExpressions:
    def where(self, text):
        return parse_statement("SELECT a FROM t WHERE " + text).where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = self.where("a = 1 + 2 * 3")
        assert expr.right.op == "+"
        assert expr.right.right.op == "*"

    def test_comparisons_normalized(self):
        assert self.where("a != 1").op == "<>"

    def test_is_null(self):
        expr = self.where("a IS NULL")
        assert isinstance(expr, ast.IsNull) and not expr.negated
        assert self.where("a IS NOT NULL").negated

    def test_like(self):
        expr = self.where("name LIKE '%smith%'")
        assert isinstance(expr, ast.Like)
        assert self.where("name NOT LIKE 'x%'").negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = self.where("a IN (SELECT b FROM u)")
        assert isinstance(expr, ast.InSubquery)
        assert self.where("a NOT IN (SELECT b FROM u)").negated

    def test_exists(self):
        expr = self.where("EXISTS (SELECT 1 FROM u WHERE u.x = t.a)")
        assert isinstance(expr, ast.Exists)

    def test_case(self):
        expr = parse_statement(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t"
        ).select_items[0][0]
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.branches) == 1
        assert expr.default is not None

    def test_aggregates(self):
        stmt = parse_statement("SELECT COUNT(*), SUM(a), AVG(b) FROM t")
        count = stmt.select_items[0][0]
        assert count.star
        assert stmt.select_items[1][0].name == "SUM"

    def test_count_distinct(self):
        expr = parse_statement("SELECT COUNT(DISTINCT a) FROM t").select_items[0][0]
        assert expr.distinct

    def test_literals(self):
        stmt = parse_statement(
            "SELECT 1, 2.5, 'text', NULL, TRUE, FALSE, DATE '2007-01-15'"
        )
        values = [item[0].value for item in stmt.select_items]
        assert values == [1, 2.5, "text", None, True, False, datetime.date(2007, 1, 15)]

    def test_parameters(self):
        stmt = parse_statement("SELECT a FROM t WHERE b = ? AND c = ?")
        params = []

        def walk(e):
            if isinstance(e, ast.Parameter):
                params.append(e.ordinal)
            for attr in ("left", "right", "operand"):
                child = getattr(e, attr, None)
                if child is not None:
                    walk(child)

        walk(stmt.where)
        assert params == [0, 1]

    def test_unary_minus(self):
        expr = self.where("a = -5")
        assert isinstance(expr.right, ast.UnaryOp)

    def test_scalar_subquery_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT (SELECT 1) FROM t")

    def test_concat(self):
        expr = parse_statement("SELECT a || b FROM t").select_items[0][0]
        assert expr.op == "||"


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.column_names == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_all_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 2)")
        assert stmt.column_names is None

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 5")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert stmt.table_name == "t"


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE emp ("
            "id INT PRIMARY KEY, name VARCHAR(50) NOT NULL, dept INT, "
            "FOREIGN KEY (dept) REFERENCES dept (id))"
        )
        assert stmt.name == "emp"
        assert stmt.primary_key == ["id"]
        assert stmt.columns[1].length == 50
        assert stmt.columns[1].not_null
        assert stmt.foreign_keys[0].ref_table == "dept"

    def test_create_table_composite_pk(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ["a", "b"]

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b)")
        assert stmt.column_names == ["a", "b"]
        assert not stmt.unique

    def test_create_unique_index(self):
        assert parse_statement("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_create_statistics(self):
        stmt = parse_statement("CREATE STATISTICS t (a, b)")
        assert stmt.table_name == "t"
        assert stmt.column_names == ["a", "b"]

    def test_calibrate(self):
        assert isinstance(
            parse_statement("CALIBRATE DATABASE"), ast.CalibrateStatement
        )

    def test_create_procedure(self):
        stmt = parse_statement(
            "CREATE PROCEDURE hot_items(threshold) AS "
            "SELECT id FROM items WHERE sales > threshold"
        )
        assert stmt.name == "hot_items"
        assert stmt.parameters == ["threshold"]

    def test_drop(self):
        assert parse_statement("DROP TABLE t").name == "t"
        assert parse_statement("DROP INDEX i").name == "i"

    def test_call(self):
        stmt = parse_statement("CALL proc(1, 'x')")
        assert stmt.name == "proc"
        assert len(stmt.args) == 2

    def test_set_option(self):
        stmt = parse_statement("SET OPTION optimization_goal = 'first-row'")
        assert stmt.name == "optimization_goal"
        assert stmt.value == "first-row"

    def test_transactions(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginStatement)
        assert isinstance(parse_statement("COMMIT"), ast.CommitStatement)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackStatement)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM t extra stuff here ,")

    def test_missing_from_table(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM")

    def test_bad_statement(self):
        with pytest.raises(SqlParseError):
            parse_statement("FROBNICATE everything")

    def test_not_without_predicate(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT a FROM t WHERE a NOT 5")

    def test_semicolon_allowed(self):
        parse_statement("SELECT 1;")
