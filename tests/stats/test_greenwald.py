"""Unit tests for the Greenwald quantile sketch."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import GreenwaldSketch


def test_epsilon_bounds():
    with pytest.raises(ValueError):
        GreenwaldSketch(epsilon=0)
    with pytest.raises(ValueError):
        GreenwaldSketch(epsilon=0.5)


def test_empty_sketch_rejects_queries():
    sketch = GreenwaldSketch()
    with pytest.raises(ValueError):
        sketch.quantile(0.5)
    with pytest.raises(ValueError):
        sketch.boundaries(4)


def test_quantile_fraction_bounds():
    sketch = GreenwaldSketch()
    sketch.insert(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(-0.1)
    with pytest.raises(ValueError):
        sketch.quantile(1.1)


def test_single_value():
    sketch = GreenwaldSketch()
    sketch.insert(42.0)
    assert sketch.quantile(0.0) == 42.0
    assert sketch.quantile(1.0) == 42.0


def test_median_of_uniform_stream():
    sketch = GreenwaldSketch(epsilon=0.01)
    values = list(range(10_000))
    random.Random(0).shuffle(values)
    for value in values:
        sketch.insert(value)
    median = sketch.quantile(0.5)
    assert abs(median - 5000) < 10_000 * 0.03  # within 3 eps


def test_extremes_are_exact():
    sketch = GreenwaldSketch(epsilon=0.05)
    values = list(range(1000))
    random.Random(1).shuffle(values)
    for value in values:
        sketch.insert(value)
    assert sketch.quantile(0.0) == 0
    assert sketch.quantile(1.0) == 999


def test_summary_much_smaller_than_stream():
    sketch = GreenwaldSketch(epsilon=0.02)
    for value in range(20_000):
        sketch.insert(float(value))
    assert sketch.summary_size() < 2000  # heavy compression


def test_boundaries_are_monotone():
    sketch = GreenwaldSketch(epsilon=0.01)
    rng = random.Random(2)
    for __ in range(5000):
        sketch.insert(rng.gauss(0, 1))
    bounds = sketch.boundaries(10)
    assert len(bounds) == 11
    assert bounds == sorted(bounds)


def test_boundaries_need_bucket():
    sketch = GreenwaldSketch()
    sketch.insert(1)
    with pytest.raises(ValueError):
        sketch.boundaries(0)


def test_skewed_stream_boundaries_concentrate():
    sketch = GreenwaldSketch(epsilon=0.01)
    rng = random.Random(3)
    # 90% of mass near zero, long tail to 1000.
    for __ in range(9000):
        sketch.insert(rng.uniform(0, 10))
    for __ in range(1000):
        sketch.insert(rng.uniform(10, 1000))
    bounds = sketch.boundaries(10)
    # Equi-depth: most boundaries land in the dense region.
    dense = sum(1 for b in bounds if b <= 10.5)
    assert dense >= 8


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=500))
def test_property_quantiles_within_value_range(values):
    sketch = GreenwaldSketch(epsilon=0.05)
    for value in values:
        sketch.insert(value)
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        q = sketch.quantile(fraction)
        assert min(values) <= q <= max(values)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=50, max_size=400))
def test_property_rank_error_bounded(values):
    epsilon = 0.1
    sketch = GreenwaldSketch(epsilon=epsilon)
    for value in values:
        sketch.insert(value)
    ordered = sorted(values)
    n = len(values)
    for fraction in (0.25, 0.5, 0.75):
        estimate = sketch.quantile(fraction)
        # Rank of the estimate must be within ~2*epsilon*n of the target.
        lo_rank = max(0, int((fraction - 2 * epsilon) * n) - 1)
        hi_rank = min(n - 1, int((fraction + 2 * epsilon) * n) + 1)
        assert ordered[lo_rank] <= estimate <= ordered[hi_rank]
