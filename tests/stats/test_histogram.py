"""Unit tests for self-managing column histograms."""

import random

import pytest

from repro.stats import ColumnHistogram
from repro.stats.histogram import MAX_SINGLETONS


def uniform_ints(n, lo=0, hi=1000, seed=0):
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for __ in range(n)]


class TestBuild:
    def test_empty_column(self):
        hist = ColumnHistogram.build("INT", [])
        assert hist.total_count() == 0
        assert hist.estimate_eq(5) == 0.0

    def test_all_nulls(self):
        hist = ColumnHistogram.build("INT", [None] * 10)
        assert hist.estimate_null() == 1.0

    def test_low_cardinality_compressed(self):
        # <= 100 distinct values: everything becomes a singleton bucket.
        values = [i % 10 for i in range(1000)]
        hist = ColumnHistogram.build("INT", values)
        assert hist.is_compressed
        assert hist.singleton_count == 10
        assert hist.bucket_count == 0

    def test_high_cardinality_gets_buckets(self):
        values = uniform_ints(5000, 0, 100_000)
        hist = ColumnHistogram.build("INT", values)
        assert hist.bucket_count > 1
        assert hist.singleton_count <= MAX_SINGLETONS

    def test_skewed_values_become_singletons(self):
        # One value is 20% of the column: must be a singleton.
        values = uniform_ints(4000, 0, 100_000, seed=1) + [777_777] * 1000
        hist = ColumnHistogram.build("INT", values)
        assert hist.estimate_eq(777_777) == pytest.approx(0.2, rel=0.05)

    def test_total_count_matches_input(self):
        values = uniform_ints(2000) + [None] * 100
        hist = ColumnHistogram.build("INT", values)
        assert hist.total_count() == pytest.approx(2100, rel=0.01)


class TestEstimation:
    @pytest.fixture
    def hist(self):
        return ColumnHistogram.build("INT", uniform_ints(5000, 0, 10_000))

    def test_eq_null_is_zero(self, hist):
        assert hist.estimate_eq(None) == 0.0

    def test_eq_outside_domain_is_zero(self, hist):
        assert hist.estimate_eq(999_999) == 0.0

    def test_eq_inside_uses_density(self, hist):
        estimate = hist.estimate_eq(5000)
        # ~5000 rows over ~4xxx distinct: density near 1/distinct.
        assert 0.00001 < estimate < 0.01

    def test_range_full_domain_is_one(self, hist):
        assert hist.estimate_range(0, 10_000) == pytest.approx(1.0, abs=0.1)

    def test_range_half_domain(self, hist):
        estimate = hist.estimate_range(0, 5000)
        assert estimate == pytest.approx(0.5, abs=0.12)

    def test_range_empty(self, hist):
        assert hist.estimate_range(20_000, 30_000) == pytest.approx(0.0, abs=0.01)

    def test_range_inverted_is_zero(self, hist):
        assert hist.estimate_range(100, 50) == 0.0

    def test_open_ranges(self, hist):
        low_only = hist.estimate_range(low=7500)
        high_only = hist.estimate_range(high=2500)
        assert low_only == pytest.approx(0.25, abs=0.12)
        assert high_only == pytest.approx(0.25, abs=0.12)

    def test_exclusive_bounds_shrink_range(self, hist):
        inclusive = hist.estimate_range(1000, 1000)
        exclusive = hist.estimate_range(1000, 1000, low_inclusive=False)
        assert exclusive <= inclusive

    def test_null_fraction(self):
        values = uniform_ints(900) + [None] * 100
        hist = ColumnHistogram.build("INT", values)
        assert hist.estimate_null() == pytest.approx(0.1, abs=0.02)

    def test_string_prefix_like(self):
        words = ["apple", "apricot", "banana", "cherry", "date"] * 200
        extra = ["w%04d" % i for i in range(1000)]  # force bucket mode
        hist = ColumnHistogram.build("VARCHAR", words + extra)
        ap_fraction = hist.estimate_like_prefix("ap")
        # 400 of 2000 values start with "ap".
        assert ap_fraction == pytest.approx(0.2, abs=0.1)

    def test_like_empty_prefix_is_one(self):
        hist = ColumnHistogram.build("VARCHAR", ["a", "b"])
        assert hist.estimate_like_prefix("") == 1.0


class TestFeedback:
    def test_eq_feedback_promotes_singleton(self):
        values = uniform_ints(5000, 0, 100_000, seed=2)
        hist = ColumnHistogram.build("INT", values)
        target = values[0]
        before = hist.estimate_eq(target)
        # Execution observed this value matches 500 of 5000 rows (10%).
        hist.feedback_eq(target, 500)
        after = hist.estimate_eq(target)
        assert after == pytest.approx(0.1, rel=0.1)
        assert after > before

    def test_eq_feedback_updates_existing_singleton(self):
        values = [7] * 500 + uniform_ints(4500, 100, 100_000, seed=3)
        hist = ColumnHistogram.build("INT", values)
        hist.feedback_eq(7, 1000)
        assert hist.estimate_eq(7) == pytest.approx(
            1000 / hist.total_count(), rel=0.01
        )

    def test_range_feedback_corrects_estimate(self):
        # Build on uniform data, then the "true" distribution shifts: the
        # range [0, 1000] actually matches far more rows than estimated.
        hist = ColumnHistogram.build("INT", uniform_ints(5000, 0, 10_000, seed=4))
        before = hist.estimate_range(0, 1000)
        hist.feedback_range(0, 1000, observed_count=3000)
        after = hist.estimate_range(0, 1000)
        assert before == pytest.approx(0.1, abs=0.05)
        assert after > before
        assert after == pytest.approx(
            3000 / hist.total_count(), rel=0.15
        )

    def test_range_feedback_outside_domain_seeds_bucket(self):
        hist = ColumnHistogram.build("INT", uniform_ints(1000, 0, 100, seed=5))
        hist.feedback_range(5000, 6000, observed_count=500)
        assert hist.estimate_range(5000, 6000) > 0.2

    def test_null_feedback(self):
        hist = ColumnHistogram.build("INT", uniform_ints(1000))
        hist.feedback_null(250)
        assert hist.estimate_null() == pytest.approx(0.2, abs=0.02)

    def test_feedback_counter(self):
        hist = ColumnHistogram.build("INT", uniform_ints(100))
        hist.feedback_eq(1, 2)
        hist.feedback_range(0, 10, 5)
        assert hist.feedback_updates == 2


class TestDmlMaintenance:
    def test_insert_grows_counts(self):
        hist = ColumnHistogram.build("INT", uniform_ints(1000, 0, 1000, seed=6))
        before = hist.total_count()
        for value in uniform_ints(100, 0, 1000, seed=7):
            hist.note_insert(value)
        assert hist.total_count() == pytest.approx(before + 100, rel=0.01)

    def test_insert_null(self):
        hist = ColumnHistogram.build("INT", uniform_ints(100))
        hist.note_insert(None)
        assert hist.null_count == 1

    def test_insert_singleton_value(self):
        values = [5] * 50 + uniform_ints(950, 100, 100_000, seed=8)
        hist = ColumnHistogram.build("INT", values)
        before = hist.estimate_eq(5)
        for __ in range(50):
            hist.note_insert(5)
        assert hist.estimate_eq(5) > before

    def test_delete_shrinks(self):
        hist = ColumnHistogram.build("INT", uniform_ints(1000, 0, 1000, seed=9))
        before = hist.total_count()
        hist.note_delete(500)
        assert hist.total_count() < before

    def test_delete_singleton_to_zero_removes_it(self):
        values = [3] * 30 + list(range(1000, 4000))
        hist = ColumnHistogram.build("INT", values)
        for __ in range(30):
            hist.note_delete(3)
        assert hist.estimate_eq(3) <= hist.density() + 1e-9

    def test_insert_outside_domain_extends(self):
        hist = ColumnHistogram.build("INT", uniform_ints(1000, 0, 100, seed=10))
        hist.note_insert(10_000)
        assert hist.estimate_range(9000, 11_000) > 0.0


class TestDynamicBuckets:
    def test_bucket_count_expands_under_drift(self):
        hist = ColumnHistogram.build("INT", uniform_ints(2000, 0, 1000, seed=11))
        before = hist.bucket_count
        # All new data lands in one narrow region.
        for value in uniform_ints(4000, 400, 410, seed=12):
            hist.note_insert(value)
        assert hist.bucket_count > before

    def test_bucket_count_bounded(self):
        hist = ColumnHistogram.build("INT", uniform_ints(2000, 0, 1000, seed=13))
        for value in uniform_ints(20_000, 0, 1_000_000, seed=14):
            hist.note_insert(value)
        assert hist.bucket_count <= 4 * hist.target_buckets + 2
