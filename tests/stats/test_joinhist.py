"""Unit tests for on-the-fly join histograms."""

import random

import pytest

from repro.stats import ColumnHistogram, join_selectivity
from repro.stats.joinhist import join_cardinality


def build(values, type_name="INT"):
    return ColumnHistogram.build(type_name, values)


def test_empty_sides():
    left = build([])
    right = build([1, 2, 3])
    assert join_selectivity(left, right) == 0.0


def test_pk_fk_join_selectivity():
    # dept(id): 50 distinct keys; emp(dept_id): 5000 rows uniform over them.
    rng = random.Random(0)
    dept_ids = list(range(50))
    emp_fk = [rng.choice(dept_ids) for __ in range(5000)]
    left = build(emp_fk)
    right = build(dept_ids)
    selectivity = join_selectivity(left, right)
    # True: each emp row matches exactly 1 dept row -> 5000 pairs of
    # 5000*50 cross product = 1/50.
    assert selectivity == pytest.approx(1 / 50, rel=0.5)


def test_disjoint_domains_no_matches():
    rng = random.Random(1)
    left = build([rng.randint(0, 1000) for __ in range(2000)])
    right = build([rng.randint(50_000, 60_000) for __ in range(2000)])
    assert join_selectivity(left, right) == pytest.approx(0.0, abs=1e-4)


def test_identical_low_cardinality_columns():
    values = [i % 10 for i in range(1000)]
    left = build(values)
    right = build(values)
    # Every value matches 100 rows on the other side: 10 * 100 * 100 pairs
    # over 1000*1000 = 0.1.
    assert join_selectivity(left, right) == pytest.approx(0.1, rel=0.1)


def test_skew_dominated_join():
    # A single hot key on both sides dominates the join size.
    left = build([42] * 900 + list(range(1000, 1100)))
    right = build([42] * 500 + list(range(5000, 5500)))
    selectivity = join_selectivity(left, right)
    expected = (900 * 500) / (1000 * 1000)
    assert selectivity == pytest.approx(expected, rel=0.1)


def test_cardinality_helper():
    values = [i % 10 for i in range(100)]
    left = build(values)
    right = build(values)
    assert join_cardinality(left, right) == pytest.approx(
        join_selectivity(left, right) * 100 * 100
    )


def test_selectivity_bounded():
    rng = random.Random(2)
    left = build([rng.randint(0, 5) for __ in range(100)])
    right = build([rng.randint(0, 5) for __ in range(100)])
    assert 0.0 <= join_selectivity(left, right) <= 1.0


def test_high_cardinality_bucket_join():
    rng = random.Random(3)
    left = build([rng.randint(0, 100_000) for __ in range(5000)])
    right = build([rng.randint(0, 100_000) for __ in range(5000)])
    selectivity = join_selectivity(left, right)
    # Uniform over ~100k values: expect roughly 1/100k (within an order of
    # magnitude given sketch noise).
    assert 1e-7 < selectivity < 1e-3
