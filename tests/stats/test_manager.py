"""Unit tests for the statistics manager."""

import pytest

from repro.buffer import BufferPool
from repro.catalog import Catalog, Column, ProcedureSchema, TableSchema
from repro.common import SimClock
from repro.stats import StatisticsManager
from repro.storage import FlashDisk, Volume
from repro.storage.rowstore import TableStorage


@pytest.fixture
def env():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 200_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=128)
    catalog = Catalog()
    table = catalog.add_table(TableSchema(
        "emp",
        [
            Column("id", "INT"),
            Column("dept_id", "INT"),
            Column("bio", "LONG VARCHAR"),
        ],
    ))
    table.storage = TableStorage(table, volume.create_file("emp"), pool)
    catalog.add_procedure(ProcedureSchema("p", (), "SELECT id FROM emp"))
    manager = StatisticsManager(catalog)
    return catalog, table, manager


def load_rows(table, n=500):
    for i in range(n):
        table.storage.insert((i, i % 10, "bio text %d" % i))


class TestBuild:
    def test_build_all_columns(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp")
        assert manager.histogram("emp", 0) is not None
        assert manager.histogram("emp", 1) is not None
        # Long strings get the string infrastructure, not a histogram.
        assert manager.histogram("emp", 2) is None
        assert manager.string_stats("emp", 2) is not None

    def test_build_specific_columns(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        assert manager.histogram("emp", 1) is not None
        assert manager.histogram("emp", 0) is None

    def test_built_histogram_estimates(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        hist = manager.histogram("emp", 1)
        assert hist.estimate_eq(3) == pytest.approx(0.1, rel=0.05)


class TestFeedback:
    def test_eq_feedback_creates_histogram_lazily(self, env):
        __, table, manager = env
        load_rows(table)
        assert manager.histogram("emp", 1) is None
        manager.feedback_eq("emp", 1, value=3, matched=50, scanned=500,
                            table_rows=500)
        hist = manager.histogram("emp", 1)
        assert hist is not None
        assert hist.built_by if hasattr(hist, "built_by") else True

    def test_feedback_scales_partial_scans(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        # Observed 10 matches in a 100-row sample of a 500-row table.
        manager.feedback_eq("emp", 1, value=7, matched=10, scanned=100,
                            table_rows=500)
        hist = manager.histogram("emp", 1)
        assert hist.estimate_eq(7) == pytest.approx(50 / hist.total_count(), rel=0.1)

    def test_like_feedback_goes_to_string_stats(self, env):
        __, table, manager = env
        manager.feedback_like("emp", 2, "%text%", matched=100, scanned=500,
                              table_rows=500)
        stats = manager.string_stats("emp", 2)
        assert stats.estimate_like("%text%") == pytest.approx(0.2)

    def test_range_feedback(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["id"])
        manager.feedback_range("emp", 0, low=0, high=99, matched=400,
                               scanned=500, table_rows=500)
        hist = manager.histogram("emp", 0)
        assert hist.estimate_range(0, 99) == pytest.approx(0.8, abs=0.15)

    def test_null_feedback(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["id"])
        manager.feedback_null("emp", 0, matched=100, scanned=500, table_rows=500)
        assert manager.histogram("emp", 0).estimate_null() == pytest.approx(
            100 / 600, rel=0.2
        )


class TestDmlHooks:
    def test_insert_updates_tracked_columns(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        hist = manager.histogram("emp", 1)
        before = hist.total_count()
        manager.note_insert("emp", (999, 3, "x"))
        assert hist.total_count() == pytest.approx(before + 1)

    def test_delete_updates(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        hist = manager.histogram("emp", 1)
        before = hist.total_count()
        manager.note_delete("emp", (0, 0, "bio"))
        assert hist.total_count() < before

    def test_update_is_delete_plus_insert(self, env):
        __, table, manager = env
        load_rows(table)
        manager.build_statistics("emp", ["dept_id"])
        hist = manager.histogram("emp", 1)
        before_eq = hist.estimate_eq(0)
        manager.note_update("emp", (0, 0, "b"), (0, 9, "b"))
        assert hist.estimate_eq(0) <= before_eq

    def test_untracked_table_ignored(self, env):
        __, __t, manager = env
        manager.note_insert("other_table", (1, 2, 3))  # no crash


def test_procedure_stats_created_on_demand(env):
    __, __t, manager = env
    stats = manager.procedure_stats("p")
    assert stats.invocations == 0
    assert manager.procedure_stats("p") is stats
