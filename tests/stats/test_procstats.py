"""Unit tests for stored-procedure statistics."""

import pytest

from repro.stats import ProcedureStats
from repro.stats.procstats import MAX_PARAMETER_ENTRIES


def test_defaults_before_any_invocation():
    stats = ProcedureStats(default_cardinality=50, default_cpu_us=500)
    cpu, cardinality = stats.estimate()
    assert (cpu, cardinality) == (500, 50)


def test_first_record_sets_averages():
    stats = ProcedureStats()
    stats.record((1,), cpu_us=2000, cardinality=20)
    cpu, cardinality = stats.estimate()
    assert cpu == pytest.approx(2000)
    assert cardinality == pytest.approx(20)


def test_moving_average_converges():
    stats = ProcedureStats()
    for __ in range(50):
        stats.record((1,), cpu_us=1000, cardinality=10)
    cpu, cardinality = stats.estimate()
    assert cpu == pytest.approx(1000, rel=0.01)
    assert cardinality == pytest.approx(10, rel=0.01)


def test_divergent_parameters_get_own_entry():
    stats = ProcedureStats()
    # Establish a baseline of small results.
    for __ in range(5):
        stats.record(("small",), cpu_us=1000, cardinality=10)
    # A parameter value with wildly larger results diverges.
    stats.record(("huge",), cpu_us=50_000, cardinality=5000)
    assert stats.parameter_specific_entries == 1
    __, cardinality = stats.estimate(("huge",))
    assert cardinality == pytest.approx(5000)
    # The baseline estimate is not destroyed by the outlier.
    __, base_cardinality = stats.estimate(("small",))
    assert base_cardinality < 5000


def test_similar_parameters_share_moving_average():
    stats = ProcedureStats()
    for i in range(10):
        stats.record((i,), cpu_us=1000 + i, cardinality=10)
    assert stats.parameter_specific_entries == 0


def test_parameter_entries_capped():
    stats = ProcedureStats()
    for __ in range(3):
        stats.record(("base",), cpu_us=100, cardinality=1)
    for i in range(MAX_PARAMETER_ENTRIES + 10):
        stats.record(("big-%d" % i,), cpu_us=100_000 + i, cardinality=10_000 + i)
    assert stats.parameter_specific_entries <= MAX_PARAMETER_ENTRIES


def test_invocation_count():
    stats = ProcedureStats()
    stats.record((), 10, 1)
    stats.record((), 20, 2)
    assert stats.invocations == 2
