"""Unit tests for long-string statistics (predicate + word buckets)."""

import pytest

from repro.stats import StringStatistics
from repro.stats.stringstats import (
    DEFAULT_SELECTIVITY,
    LIKE,
    MAX_PREDICATE_BUCKETS,
    MAX_WORD_BUCKETS,
)


def test_unobserved_predicate_returns_none():
    stats = StringStatistics()
    assert stats.estimate_predicate("=", "anything") is None


def test_observed_equality_recalled():
    stats = StringStatistics()
    stats.observe_predicate("=", "hello world", 0.02)
    assert stats.estimate_predicate("=", "hello world") == pytest.approx(0.02)


def test_like_exact_pattern_recalled():
    stats = StringStatistics()
    stats.observe_predicate(LIKE, "%error%", 0.15)
    assert stats.estimate_like("%error%") == pytest.approx(0.15)


def test_like_word_bucket_estimation():
    # "many applications perform string searches using a LIKE pattern
    # intended to match a 'word' somewhere in the string"
    stats = StringStatistics()
    stats.observe_predicate(LIKE, "%timeout%", 0.10)
    # A different pattern containing the same word uses the word bucket.
    assert stats.estimate_like("%timeout occurred%") == pytest.approx(
        0.10, rel=0.01
    )


def test_like_multiple_words_independence():
    stats = StringStatistics()
    stats.observe_predicate(LIKE, "%alpha%", 0.2)
    stats.observe_predicate(LIKE, "%beta%", 0.5)
    assert stats.estimate_like("%alpha beta%") == pytest.approx(0.1)


def test_like_unknown_pattern_default():
    stats = StringStatistics()
    assert stats.estimate_like("%never seen%") == DEFAULT_SELECTIVITY


def test_observe_value_seeds_word_buckets():
    stats = StringStatistics()
    stats.observe_value("shipping label printed")
    assert stats.word_bucket_count == 3
    # Seeded words carry no selectivity until a predicate observes one.
    assert stats.estimate_like("%label%") == DEFAULT_SELECTIVITY


def test_observe_none_value_is_noop():
    stats = StringStatistics()
    stats.observe_value(None)
    assert stats.word_bucket_count == 0


def test_predicate_buckets_capped_lru():
    stats = StringStatistics()
    for i in range(MAX_PREDICATE_BUCKETS + 50):
        stats.observe_predicate("=", "value-%d" % i, 0.01)
    assert stats.predicate_bucket_count == MAX_PREDICATE_BUCKETS
    # The oldest observation was evicted.
    assert stats.estimate_predicate("=", "value-0") is None
    assert stats.estimate_predicate("=", "value-%d" % (MAX_PREDICATE_BUCKETS + 49)) is not None


def test_word_buckets_capped():
    stats = StringStatistics()
    for i in range(MAX_WORD_BUCKETS + 100):
        stats.observe_value("word%d" % i)
    assert stats.word_bucket_count == MAX_WORD_BUCKETS


def test_word_matching_case_insensitive():
    stats = StringStatistics()
    stats.observe_predicate(LIKE, "%ERROR%", 0.3)
    assert stats.estimate_like("%error%") == pytest.approx(0.3)
