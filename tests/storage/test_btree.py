"""Unit tests for the B+-tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.common import SimClock
from repro.common.errors import ExecutionError
from repro.storage import FlashDisk, Volume
from repro.storage.btree import BTree, decode_key, encode_key
from repro.storage.rowstore import RowId


def make_tree(fanout=8, capacity=256):
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 200_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=capacity)
    return BTree(volume.create_file("idx"), pool, fanout=fanout)


class TestKeyEncoding:
    def test_roundtrip(self):
        assert decode_key(encode_key((1, "a", None))) == (1, "a", None)

    def test_null_sorts_first(self):
        assert encode_key((None,)) < encode_key((0,))
        assert encode_key((None,)) < encode_key(("",))

    def test_value_ordering_preserved(self):
        assert encode_key((1, "b")) < encode_key((1, "c")) < encode_key((2, "a"))


class TestBasicOps:
    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert((5,), RowId(0, 0))
        assert tree.search((5,)) == [RowId(0, 0)]
        assert tree.search((6,)) == []

    def test_duplicates_accumulate(self):
        tree = make_tree()
        tree.insert((5,), RowId(0, 0))
        tree.insert((5,), RowId(0, 1))
        assert sorted(tree.search((5,))) == [RowId(0, 0), RowId(0, 1)]

    def test_len_tracks_entries(self):
        tree = make_tree()
        for i in range(10):
            tree.insert((i,), RowId(0, i))
        assert len(tree) == 10

    def test_delete_removes_entry(self):
        tree = make_tree()
        tree.insert((5,), RowId(0, 0))
        tree.insert((5,), RowId(0, 1))
        tree.delete((5,), RowId(0, 0))
        assert tree.search((5,)) == [RowId(0, 1)]

    def test_delete_missing_key_raises(self):
        tree = make_tree()
        with pytest.raises(ExecutionError):
            tree.delete((1,), RowId(0, 0))

    def test_delete_missing_rowid_raises(self):
        tree = make_tree()
        tree.insert((1,), RowId(0, 0))
        with pytest.raises(ExecutionError):
            tree.delete((1,), RowId(9, 9))


class TestSplitsAndScale:
    def test_many_inserts_stay_searchable(self):
        tree = make_tree(fanout=8)
        n = 500
        order = list(range(n))
        random.Random(1).shuffle(order)
        for i in order:
            tree.insert((i,), RowId(i // 10, i % 10))
        for i in range(n):
            assert tree.search((i,)) == [RowId(i // 10, i % 10)]
        assert tree.height > 1
        assert tree.stats.leaf_page_count > 1

    def test_range_scan_full_is_sorted(self):
        tree = make_tree(fanout=8)
        keys = list(range(200))
        random.Random(2).shuffle(keys)
        for key in keys:
            tree.insert((key,), RowId(0, key % 64))
        scanned = [key[0] for key, __ in tree.range_scan()]
        assert scanned == list(range(200))

    def test_range_scan_bounds(self):
        tree = make_tree(fanout=8)
        for key in range(100):
            tree.insert((key,), RowId(0, 0))
        result = [k[0] for k, __ in tree.range_scan(low=(10,), high=(20,))]
        assert result == list(range(10, 21))
        exclusive = [
            k[0]
            for k, __ in tree.range_scan(
                low=(10,), high=(20,), low_inclusive=False, high_inclusive=False
            )
        ]
        assert exclusive == list(range(11, 20))

    def test_range_scan_open_low(self):
        tree = make_tree()
        for key in range(50):
            tree.insert((key,), RowId(0, 0))
        result = [k[0] for k, __ in tree.range_scan(high=(5,))]
        assert result == [0, 1, 2, 3, 4, 5]

    def test_composite_keys(self):
        tree = make_tree(fanout=8)
        for a in range(10):
            for b in range(10):
                tree.insert((a, "s%d" % b), RowId(a, b))
        result = [k for k, __ in tree.range_scan(low=(3, "s0"), high=(3, "s9"))]
        assert len(result) == 10
        assert all(k[0] == 3 for k in result)


class TestStats:
    def test_distinct_and_density(self):
        tree = make_tree()
        for i in range(10):
            tree.insert((i % 5,), RowId(0, i))
        assert tree.stats.distinct_keys == 5
        assert tree.stats.density() == pytest.approx(0.2)

    def test_delete_updates_distinct(self):
        tree = make_tree()
        tree.insert((1,), RowId(0, 0))
        tree.insert((1,), RowId(0, 1))
        tree.delete((1,), RowId(0, 0))
        assert tree.stats.distinct_keys == 1
        tree.delete((1,), RowId(0, 1))
        assert tree.stats.distinct_keys == 0

    def test_clustering_fraction_clustered(self):
        tree = make_tree(fanout=8)
        # Key order matches physical order: perfectly clustered.
        for i in range(200):
            tree.insert((i,), RowId(i // 10, i % 10))
        assert tree.clustering_fraction() > 0.9

    def test_clustering_fraction_unclustered(self):
        tree = make_tree(fanout=8)
        rng = random.Random(3)
        pages = list(range(200))
        rng.shuffle(pages)
        for i, page in enumerate(pages):
            tree.insert((i,), RowId(page, 0))
        assert tree.clustering_fraction() < 0.3

    def test_empty_tree_clustering_is_one(self):
        assert make_tree().clustering_fraction() == 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=150))
def test_property_inserted_keys_always_found(keys):
    tree = make_tree(fanout=6)
    for slot, key in enumerate(keys):
        tree.insert((key,), RowId(0, slot))
    for slot, key in enumerate(keys):
        assert RowId(0, slot) in tree.search((key,))
    # Range scan returns exactly the multiset of inserted keys, sorted.
    scanned = [k[0] for k, __ in tree.range_scan()]
    assert scanned == sorted(keys)
