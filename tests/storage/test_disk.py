"""Unit tests for simulated disk devices."""

import pytest

from repro.common import KiB, SimClock
from repro.dtt import default_dtt_model, flash_dtt_model
from repro.storage import FlashDisk, ModelBackedDisk, RotationalDisk


def test_disk_requires_pages():
    with pytest.raises(ValueError):
        FlashDisk(SimClock(), 0)


def test_read_charges_clock():
    clock = SimClock()
    disk = FlashDisk(clock, 100, read_us=390)
    cost = disk.read_page(0)
    assert cost == 390
    assert clock.now == 390
    assert disk.reads == 1


def test_write_charges_clock():
    clock = SimClock()
    disk = FlashDisk(clock, 100, write_us=1180)
    disk.write_page(5)
    assert clock.now == 1180
    assert disk.writes == 1


def test_out_of_range_rejected():
    disk = FlashDisk(SimClock(), 10)
    with pytest.raises(ValueError):
        disk.read_page(10)
    with pytest.raises(ValueError):
        disk.write_page(-1)


def test_reset_counters():
    disk = FlashDisk(SimClock(), 10)
    disk.read_page(1)
    disk.write_page(2)
    disk.reset_counters()
    assert (disk.reads, disk.writes, disk.busy_us) == (0, 0, 0)


class TestRotationalDisk:
    def test_sequential_reads_are_cheap(self):
        clock = SimClock()
        disk = RotationalDisk(clock, 100_000)
        disk.read_page(0)
        sequential = disk.read_page(1)  # head is right before page 1
        assert sequential < 200  # transfer only, no seek/rotation

    def test_long_seek_costs_more_than_short(self):
        clock = SimClock()
        disk = RotationalDisk(clock, 1_000_000, seed=7)
        short_costs = []
        long_costs = []
        pos = 0
        for __ in range(40):
            disk.read_page(pos)
            short_costs.append(disk.read_page(pos + 100))
            disk.read_page(pos)
            long_costs.append(disk.read_page(pos + 900_000))
            pos = 0
        assert sum(long_costs) / len(long_costs) > sum(short_costs) / len(short_costs)

    def test_writes_cheaper_than_reads_when_random(self):
        clock = SimClock()
        disk = RotationalDisk(clock, 1_000_000, seed=3)
        read_total = 0.0
        write_total = 0.0
        for i in range(60):
            disk.read_page(0)
            read_total += disk.read_page(500_000 + i)
            disk.read_page(0)
            write_total += disk.write_page(500_000 + i)
        assert write_total < read_total

    def test_deterministic_given_seed(self):
        def run():
            disk = RotationalDisk(SimClock(), 10_000, seed=42)
            return [disk.read_page(page) for page in (0, 5000, 100, 9000)]

        assert run() == run()


class TestModelBackedDisk:
    def test_costs_match_model(self):
        model = default_dtt_model()
        clock = SimClock()
        disk = ModelBackedDisk(clock, 10_000, model, page_size=4 * KiB)
        disk.read_page(0)
        # Head sits after page 0; reading page 1000 is distance 999.
        cost = disk.read_page(1000)
        assert cost == pytest.approx(model.cost_us("read", 4 * KiB, 999))

    def test_sequential_access_uses_band_one(self):
        model = flash_dtt_model()
        disk = ModelBackedDisk(SimClock(), 100, model)
        disk.read_page(0)
        cost = disk.read_page(1)
        assert cost == pytest.approx(model.cost_us("read", 4 * KiB, 1))
