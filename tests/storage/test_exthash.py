"""Unit + property tests for the disk-based extensible hash table."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.common import SimClock
from repro.storage import FlashDisk, Volume
from repro.storage.exthash import ExtensibleHashTable


def make_table(bucket_capacity=4, pool_pages=256):
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 500_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=pool_pages)
    return ExtensibleHashTable(
        volume.create_file("hash"), pool, bucket_capacity=bucket_capacity
    ), pool


class TestBasics:
    def test_put_get(self):
        table, __ = make_table()
        table.put("k", "v")
        assert table.get("k") == "v"
        assert "k" in table
        assert len(table) == 1

    def test_get_missing_default(self):
        table, __ = make_table()
        assert table.get("ghost") is None
        assert table.get("ghost", 7) == 7
        assert "ghost" not in table

    def test_overwrite_keeps_count(self):
        table, __ = make_table()
        table.put("k", 1)
        table.put("k", 2)
        assert table.get("k") == 2
        assert len(table) == 1

    def test_remove(self):
        table, __ = make_table()
        table.put("k", 1)
        assert table.remove("k") == 1
        assert "k" not in table
        assert len(table) == 0

    def test_remove_missing_raises(self):
        table, __ = make_table()
        with pytest.raises(KeyError):
            table.remove("nope")

    def test_bucket_capacity_validation(self):
        clock = SimClock()
        volume = Volume(FlashDisk(clock, 1000))
        pool = BufferPool(volume.create_file("t"), 16)
        with pytest.raises(ValueError):
            ExtensibleHashTable(volume.create_file("h"), pool, bucket_capacity=1)


class TestGrowth:
    def test_directory_doubles_under_load(self):
        table, __ = make_table(bucket_capacity=4)
        assert table.directory_size == 1
        for i in range(200):
            table.put(i, i * 10)
        assert table.directory_size > 1
        assert table.bucket_pages > 1
        for i in range(200):
            assert table.get(i) == i * 10

    def test_no_configured_limit(self):
        """The paper's point: no lock-table size to tune — just grow."""
        table, pool = make_table(bucket_capacity=16, pool_pages=64)
        n = 5000
        for i in range(n):
            table.put(("tbl", i), "txn-1")
        assert len(table) == n
        # The structure outgrew the pool: buckets spilled to disk and come
        # back correct.
        assert table.bucket_pages > pool.capacity_pages / 2
        sample = random.Random(0).sample(range(n), 50)
        assert all(table.get(("tbl", i)) == "txn-1" for i in sample)

    def test_items_iterates_everything(self):
        table, __ = make_table(bucket_capacity=4)
        expected = {}
        for i in range(100):
            table.put(i, -i)
            expected[i] = -i
        assert dict(table.items()) == expected

    def test_mixed_churn(self):
        table, __ = make_table(bucket_capacity=4)
        rng = random.Random(1)
        model = {}
        for step in range(2000):
            key = rng.randrange(200)
            if rng.random() < 0.6:
                table.put(key, step)
                model[key] = step
            elif key in model:
                assert table.remove(key) == model.pop(key)
        assert dict(table.items()) == model
        assert len(table) == len(model)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from("pr"), st.integers(min_value=0, max_value=50)),
    max_size=200,
))
def test_property_matches_dict_model(operations):
    table, __ = make_table(bucket_capacity=3)
    model = {}
    for op, key in operations:
        if op == "p":
            table.put(key, key * 7)
            model[key] = key * 7
        elif key in model:
            table.remove(key)
            del model[key]
    assert dict(table.items()) == model
    for key in range(51):
        assert table.get(key) == model.get(key)
