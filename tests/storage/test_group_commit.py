"""Unit tests for the adaptive group-commit coordinator.

The coordinator is exercised against a real transaction log on a
simulated volume, with a stub scheduler standing in for the workload
scheduler where parking behaviour matters.
"""

import pytest

from repro.analysis.sanitizers import GroupCommitInvariantError
from repro.common import SimClock
from repro.common.errors import IOFaultError
from repro.faults import FaultPlan, FaultRates
from repro.profiling import MetricsRegistry
from repro.storage import (
    FlashDisk,
    GroupCommitConfig,
    GroupCommitCoordinator,
    TransactionLog,
    Volume,
)
from repro.storage.log import INSERT


class Rig:
    """A log + clock + coordinator with controllable scheduling."""

    def __init__(self, config=None, scheduler=None, sanitize=False,
                 fault_plan=None, metrics=None):
        self.clock = SimClock()
        volume = Volume(FlashDisk(self.clock, 10_000))
        self.log = TransactionLog(
            volume.create_file("txn.log"), metrics=metrics,
            fault_plan=fault_plan,
        )
        self.scheduler = scheduler
        self.coordinator = GroupCommitCoordinator(
            log_fn=lambda: self.log,
            clock=self.clock,
            config=config,
            metrics=metrics,
            scheduler_fn=lambda: self.scheduler,
            sanitize=sanitize,
        )
        self._next_txn = 1

    def begin_txn(self):
        txn_id = self._next_txn
        self._next_txn += 1
        self.log.begin(txn_id)
        self.log.log_change(txn_id, INSERT, "t", txn_id, after=(txn_id,))
        return txn_id

    def commit_one(self):
        return self.coordinator.commit(self.begin_txn())


class ParkingScheduler:
    """Stub: lets a configurable number of commits wait, then flushes."""

    def __init__(self, rig, park_first=1):
        self.rig = rig
        self.park_first = park_first
        self.parked = []

    def commit_can_wait(self):
        return len(self.parked) < self.park_first

    def wait_for_commit(self, ticket, coordinator):
        self.parked.append(ticket)
        # A real scheduler would run other sessions here; the stub just
        # returns un-durable so the committer flushes for the batch.


class TestInlinePath:
    def test_commit_without_scheduler_forces_inline(self):
        rig = Rig()
        ticket = rig.commit_one()
        assert ticket.durable
        assert ticket.lsn <= rig.log.durable_lsn
        assert ticket.txn_id in rig.log.committed_txns()
        assert rig.coordinator.pending_count() == 0

    def test_single_connection_is_force_per_commit(self):
        metrics = MetricsRegistry()
        rig = Rig(metrics=metrics)
        for __ in range(5):
            rig.commit_one()
        assert rig.coordinator.batches == 5
        assert rig.coordinator.committed == 5
        assert metrics.snapshot()["wal.forces"] == 5

    def test_disabled_config_never_waits(self):
        rig = Rig(config=GroupCommitConfig(enabled=False))
        rig.scheduler = ParkingScheduler(rig)
        rig.coordinator.window_us = 1_000
        rig.commit_one()
        assert rig.scheduler.parked == []


class TestBatching:
    def test_parked_commits_settle_in_one_flush(self):
        rig = Rig()
        scheduler = ParkingScheduler(rig, park_first=2)
        rig.scheduler = scheduler
        rig.coordinator.window_us = 1_000

        # Two committers "park" (stub records them); drive them through
        # commit(): each returns un-durable from the stub wait, so the
        # second flush covers both tickets at once.
        first = rig.commit_one()
        assert first.durable
        assert len(scheduler.parked) == 1

    def test_flush_settles_every_covered_ticket(self):
        rig = Rig()
        a = rig.begin_txn()
        b = rig.begin_txn()
        log = rig.log
        coordinator = rig.coordinator
        ra = log.append_commit(a)
        rb = log.append_commit(b)
        from repro.storage.log import CommitTicket

        ta = CommitTicket(a, ra.lsn, rig.clock.now)
        tb = CommitTicket(b, rb.lsn, rig.clock.now)
        coordinator._pending.extend([ta, tb])
        settled = coordinator.flush()
        assert settled == 2
        assert ta.durable and tb.durable
        assert coordinator.batches == 1
        assert {a, b} <= log.committed_txns()

    def test_target_batch_forces_immediately(self):
        rig = Rig(config=GroupCommitConfig(target_batch=1))
        rig.scheduler = ParkingScheduler(rig)
        rig.coordinator.window_us = 1_000
        ticket = rig.commit_one()
        assert ticket.durable
        assert rig.scheduler.parked == []

    def test_deadline_tracks_oldest_pending(self):
        rig = Rig()
        assert rig.coordinator.deadline_us() is None
        rig.coordinator.window_us = 500
        txn = rig.begin_txn()
        record = rig.log.append_commit(txn)
        from repro.storage.log import CommitTicket

        rig.coordinator._pending.append(
            CommitTicket(txn, record.lsn, rig.clock.now)
        )
        assert rig.coordinator.deadline_us() == rig.clock.now + 500
        rig.coordinator.reset()
        assert rig.coordinator.deadline_us() is None
        assert rig.coordinator.pending_count() == 0


class TestWindowTuning:
    def test_idle_arrivals_collapse_window(self):
        rig = Rig()
        rig.coordinator.window_us = 1_500
        for __ in range(8):
            rig.clock.advance(50_000)  # far beyond idle_threshold_us
            rig.commit_one()
        assert rig.coordinator.window_us == 0

    def test_bursty_arrivals_widen_window(self):
        rig = Rig()
        for __ in range(16):
            rig.clock.advance(100)  # tight burst
            rig.commit_one()
        cfg = rig.coordinator.config
        assert rig.coordinator.window_us > 0
        assert rig.coordinator.window_us <= cfg.max_window_us

    def test_window_follows_damping_equation(self):
        cfg = GroupCommitConfig()
        rig = Rig(config=cfg)
        coordinator = rig.coordinator
        coordinator._observe_arrival()  # first arrival: no gap yet
        rig.clock.advance(100)
        coordinator._observe_arrival()  # gap 100
        ideal = min(cfg.max_window_us, 100 * (cfg.target_batch - 1))
        first = int(cfg.damping_new * ideal + cfg.damping_old * 0)
        assert coordinator.window_us == first
        rig.clock.advance(100)
        coordinator._observe_arrival()
        second = int(cfg.damping_new * ideal + cfg.damping_old * first)
        assert coordinator.window_us == second
        # Damped: converging toward the ideal, never overshooting it.
        assert first < second < ideal

    def test_window_capped_at_max(self):
        cfg = GroupCommitConfig(max_window_us=300)
        rig = Rig(config=cfg)
        for __ in range(32):
            rig.clock.advance(200)
            rig.commit_one()
        assert rig.coordinator.window_us <= 300


class TestFailurePaths:
    def test_failed_force_removes_own_ticket(self):
        plan = FaultPlan(
            seed=3,
            rates=FaultRates(log_force_error=1.0, io_retry_limit=1),
        )
        rig = Rig(fault_plan=plan)
        txn = rig.begin_txn()
        with pytest.raises(IOFaultError):
            rig.coordinator.commit(txn)
        # The rolled-back commit must not linger for a later batch.
        assert rig.coordinator.pending_count() == 0

    def test_ack_invariant_catches_lying_ticket(self):
        class LyingScheduler:
            def commit_can_wait(self):
                return True

            def wait_for_commit(self, ticket, coordinator):
                # Claim durability without ever forcing the log.
                ticket.durable = True

        rig = Rig(sanitize=True, scheduler=LyingScheduler())
        rig.coordinator.window_us = 1_000
        with pytest.raises(GroupCommitInvariantError):
            rig.commit_one()

    def test_ack_invariant_passes_honest_path(self):
        rig = Rig(sanitize=True)
        ticket = rig.commit_one()
        assert ticket.durable


class TestMetrics:
    def test_batch_and_latency_metrics_published(self):
        metrics = MetricsRegistry()
        rig = Rig(metrics=metrics)
        rig.commit_one()
        snap = metrics.snapshot()
        assert snap["wal.group_commit.batches"] == 1
        assert snap["wal.group_commit.batch_size"]["count"] == 1
        assert snap["txn.commit_latency_us"]["count"] == 1
        assert snap["wal.group_commit.pending"] == 0
        assert snap["wal.group_commit.window_us"] == rig.coordinator.window_us
