"""Unit tests for the transaction log."""

import pytest

from repro.common import SimClock
from repro.common.errors import TransactionError
from repro.storage import FlashDisk, TransactionLog, Volume
from repro.storage.log import COMMIT, DELETE, INSERT, UPDATE


@pytest.fixture
def log():
    volume = Volume(FlashDisk(SimClock(), 10_000))
    return TransactionLog(volume.create_file("txn.log"))


def test_begin_assigns_lsn(log):
    record = log.begin(1)
    assert record.lsn == 0
    assert record.kind == "BEGIN"


def test_double_begin_rejected(log):
    log.begin(1)
    with pytest.raises(TransactionError):
        log.begin(1)


def test_change_requires_active_txn(log):
    with pytest.raises(TransactionError):
        log.log_change(99, INSERT, "t", 1, after=(1,))


def test_unknown_change_kind_rejected(log):
    log.begin(1)
    with pytest.raises(TransactionError):
        log.log_change(1, "MUTATE", "t", 1)


def test_commit_forces_log(log):
    log.begin(1)
    log.log_change(1, INSERT, "t", 1, after=(1, "a"))
    record = log.commit(1)
    assert record.kind == COMMIT
    assert log.durable_lsn == record.lsn


def test_commit_without_begin_rejected(log):
    with pytest.raises(TransactionError):
        log.commit(5)


def test_rollback_marks_inactive(log):
    log.begin(1)
    log.rollback(1)
    with pytest.raises(TransactionError):
        log.log_change(1, INSERT, "t", 1)


def test_undo_chain_reverse_order(log):
    log.begin(1)
    log.log_change(1, INSERT, "t", 1, after=(1,))
    log.log_change(1, UPDATE, "t", 1, before=(1,), after=(2,))
    log.log_change(1, DELETE, "t", 1, before=(2,))
    chain = log.undo_chain(1)
    assert [record.kind for record in chain] == [DELETE, UPDATE, INSERT]


def test_redo_only_committed_and_durable(log):
    log.begin(1)
    log.log_change(1, INSERT, "t", 1, after=(1,))
    log.commit(1)
    log.begin(2)
    log.log_change(2, INSERT, "t", 2, after=(2,))
    # txn 2 never commits.
    redo = log.redo_records()
    assert [record.txn_id for record in redo] == [1]


def test_crash_discards_undurable_tail(log):
    log.begin(1)
    log.log_change(1, INSERT, "t", 1, after=(1,))
    log.commit(1)
    durable_count = log.record_count()
    log.begin(2)
    log.log_change(2, INSERT, "t", 2, after=(2,))
    log.simulate_crash()
    assert log.record_count() == durable_count
    assert log.redo_records()[-1].txn_id == 1


def test_force_writes_pages(log):
    log.begin(1)
    for row in range(100):
        log.log_change(1, INSERT, "t", row, after=(row,))
    pages = log.force()
    assert pages >= 3  # 101 records at 32/page
    assert log.force() == 0  # nothing new to write


def test_checkpoint_forces(log):
    log.begin(1)
    log.log_change(1, INSERT, "t", 1, after=(1,))
    record = log.checkpoint()
    assert record.kind == "CKPT_END"
    assert log.durable_lsn == record.lsn


def test_checkpoint_snapshots_active_and_dirty(log):
    log.begin(7)
    log.log_change(7, INSERT, "t", 1, after=(1,))
    begin = log.checkpoint_begin(log.active_txns(), {("table:t", 0): 1})
    assert begin.kind == "CKPT_BEGIN"
    assert begin.after["active"] == [7]
    assert begin.after["dpt"] == [("table:t", 0, 1)]
    end = log.checkpoint_end(begin)
    assert end.after["begin_lsn"] == begin.lsn
    assert log.last_checkpoint.lsn == begin.lsn
