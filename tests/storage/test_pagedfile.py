"""Unit tests for volumes and paged files."""

import pytest

from repro.common import SimClock
from repro.common.errors import ReproError
from repro.storage import FlashDisk, Volume
from repro.storage.pagedfile import EXTENT_PAGES


@pytest.fixture
def volume():
    return Volume(FlashDisk(SimClock(), 10_000))


def test_create_files_get_distinct_ids(volume):
    a = volume.create_file("a")
    b = volume.create_file("b")
    assert a.file_id != b.file_id
    assert volume.file(a.file_id) is a
    assert {f.name for f in volume.files()} == {"a", "b"}


def test_allocate_pages_dense_from_zero(volume):
    f = volume.create_file("t")
    assert [f.allocate_page() for __ in range(3)] == [0, 1, 2]
    assert f.page_count == 3


def test_write_read_roundtrip(volume):
    f = volume.create_file("t")
    page = f.allocate_page()
    f.write(page, {"rows": [1, 2, 3]})
    assert f.read(page) == {"rows": [1, 2, 3]}


def test_io_charges_device_time(volume):
    f = volume.create_file("t")
    page = f.allocate_page()
    before = volume.disk.clock.now
    f.write(page, "payload")
    f.read(page)
    assert volume.disk.clock.now > before
    assert volume.disk.reads == 1
    assert volume.disk.writes == 1


def test_pages_within_file_are_contiguous(volume):
    f = volume.create_file("t")
    pages = [f.allocate_page() for __ in range(EXTENT_PAGES)]
    globals_ = [f.global_page(p) for p in pages]
    assert globals_ == list(range(globals_[0], globals_[0] + EXTENT_PAGES))


def test_two_files_get_disjoint_extents(volume):
    a = volume.create_file("a")
    b = volume.create_file("b")
    pa = a.allocate_page()
    pb = b.allocate_page()
    assert a.global_page(pa) != b.global_page(pb)


def test_free_page_reused(volume):
    f = volume.create_file("t")
    first = f.allocate_page()
    f.allocate_page()
    f.free_page(first)
    assert f.page_count == 1
    assert f.allocate_page() == first


def test_truncate_releases_extents(volume):
    f = volume.create_file("t")
    for __ in range(EXTENT_PAGES + 1):
        f.allocate_page()
    used_before = volume.used_pages()
    f.truncate()
    assert f.page_count == 0
    assert volume.used_pages() < used_before
    # Extents are recycled by the next allocation.
    g = volume.create_file("g")
    g.allocate_page()
    assert volume.used_pages() <= used_before


def test_out_of_range_page_rejected(volume):
    f = volume.create_file("t")
    with pytest.raises(ValueError):
        f.read(0)
    f.allocate_page()
    with pytest.raises(ValueError):
        f.global_page(1)


def test_volume_full_raises():
    volume = Volume(FlashDisk(SimClock(), EXTENT_PAGES))  # room for 1 extent
    f = volume.create_file("t")
    for __ in range(EXTENT_PAGES):
        f.allocate_page()
    with pytest.raises(ReproError):
        f.allocate_page()


def test_size_bytes(volume):
    f = volume.create_file("t")
    f.allocate_page()
    f.allocate_page()
    assert f.size_bytes == 2 * volume.disk.page_size


def test_peek_does_not_charge_io(volume):
    f = volume.create_file("t")
    page = f.allocate_page()
    f.write(page, "data")
    reads_before = volume.disk.reads
    assert volume.peek_payload(f.global_page(page)) == "data"
    assert volume.disk.reads == reads_before
