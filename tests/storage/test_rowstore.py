"""Unit tests for the row store."""

import pytest

from repro.buffer import BufferPool
from repro.catalog import Column, TableSchema
from repro.common import SimClock
from repro.common.errors import ExecutionError
from repro.storage import FlashDisk, Volume
from repro.storage.rowstore import RowId, TableStorage


@pytest.fixture
def store():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=32)
    schema = TableSchema(
        "emp", [Column("id", "INT"), Column("name", "VARCHAR")]
    )
    storage = TableStorage(schema, volume.create_file("emp.dat"), pool)
    schema.storage = storage
    return storage


def test_insert_and_get(store):
    rid = store.insert((1, "ann"))
    assert store.get(rid) == (1, "ann")
    assert store.row_count == 1


def test_insert_wrong_arity_rejected(store):
    with pytest.raises(ExecutionError):
        store.insert((1,))


def test_scan_in_physical_order(store):
    rids = [store.insert((i, "row%d" % i)) for i in range(100)]
    scanned = list(store.scan())
    assert len(scanned) == 100
    assert [row[0] for __, row in scanned] == list(range(100))
    assert scanned[0][0] == rids[0]


def test_update(store):
    rid = store.insert((1, "old"))
    old = store.update(rid, (1, "new"))
    assert old == (1, "old")
    assert store.get(rid) == (1, "new")


def test_delete(store):
    rid = store.insert((1, "x"))
    store.delete(rid)
    assert store.row_count == 0
    with pytest.raises(ExecutionError):
        store.get(rid)
    with pytest.raises(ExecutionError):
        store.delete(rid)


def test_deleted_slot_reused(store):
    first = store.insert((1, "a"))
    store.insert((2, "b"))
    store.delete(first)
    third = store.insert((3, "c"))
    assert third == first  # slot recycled
    assert store.row_count == 2


def test_pages_grow_with_rows(store):
    per_page = store.rows_per_page
    for i in range(per_page + 1):
        store.insert((i, "r"))
    assert store.page_count == 2


def test_scan_skips_deleted(store):
    rids = [store.insert((i, "r")) for i in range(10)]
    store.delete(rids[3])
    store.delete(rids[7])
    values = [row[0] for __, row in store.scan()]
    assert values == [0, 1, 2, 4, 5, 6, 8, 9]


def test_size_bytes(store):
    store.insert((1, "a"))
    assert store.size_bytes() == store.pool.page_size


def test_rowid_equality_and_ordering():
    assert RowId(1, 2) == RowId(1, 2)
    assert RowId(1, 2) != RowId(1, 3)
    assert RowId(0, 5) < RowId(1, 0)
    assert len({RowId(1, 2), RowId(1, 2)}) == 1


def test_scan_charges_io_when_not_resident(store):
    for i in range(200):
        store.insert((i, "row"))
    pool = store.pool
    pool.flush_all()
    pool.set_capacity(1)  # force nearly everything out
    misses_before = pool.misses
    list(store.scan())
    assert pool.misses > misses_before
