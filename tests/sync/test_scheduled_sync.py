"""Synchronization as a scheduled session: sync parks like anyone else.

``SyncSession.scheduled_statement()`` wraps a whole upload+download
round as one workload-scheduler item.  Run against a consolidated
server whose other sessions are hammering the same rows, the sync
round's row-lock acquisitions hit the lock-wait yield point and its
commit hits the group-commit yield point — deterministically, so the
crash harness (and these tests) can reproduce any interleaving by seed.
"""

from repro import Server, ServerConfig
from repro.engine import WorkloadScheduler
from repro.engine.scheduler import DONE
from repro.sync import ConflictPolicy, SyncSession

DDL = "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR(10), qty INT)"


def hot_statements(n=6):
    def source(connection):
        for __ in range(n):
            yield "UPDATE orders SET qty = qty + 1 WHERE id = 1"
    return source


def run_scheduled_sync(seed):
    remote = Server(ServerConfig(start_buffer_governor=False))
    consolidated = Server(ServerConfig(start_buffer_governor=False))
    remote_conn = remote.connect()
    consolidated_conn = consolidated.connect()
    remote_conn.execute(DDL)
    consolidated_conn.execute(DDL)
    session = SyncSession(
        remote, consolidated, ["orders"],
        conflict_policy=ConflictPolicy.REMOTE_WINS,
    )
    remote_conn.execute(
        "INSERT INTO orders VALUES (1, 'new', 0), (2, 'new', 0)"
    )
    session.synchronize()  # quiescent priming round
    # The remote diverges; the next round must write the hot row on the
    # consolidated side (remote-wins) while local writers contend for it.
    remote_conn.execute("UPDATE orders SET qty = 1000 WHERE id = 1")

    scheduler = WorkloadScheduler(consolidated, seed=seed, switch_rate=0.8)
    scheduler.add_session("w0", hot_statements())
    scheduler.add_session("w1", hot_statements())
    scheduler.add_session("sync", [session.scheduled_statement()])
    report = scheduler.run()
    rows = sorted(
        tuple(row)
        for row in consolidated_conn.execute("SELECT * FROM orders").rows
    )
    return consolidated, scheduler, report, rows


class TestScheduledSync:
    def test_sync_round_completes_under_contention(self):
        consolidated, scheduler, report, rows = run_scheduled_sync(seed=4)
        assert report["statement_errors"] == 0
        assert all(s.status == DONE for s in scheduler.sessions)
        lines = scheduler.trace_lines().splitlines()
        # The sync round itself parked on the hot row and completed.
        assert any(" sync wait:lock" in line for line in lines)
        assert any(" sync done" in line for line in lines)
        assert consolidated.lock_manager.waits > 0
        assert consolidated.lock_manager.deadlocks == 0
        # Remote-wins stamped qty=1000; increments interleaving after it
        # stacked on top, those before it were overwritten (by design).
        assert rows[1] == (2, "new", 0)
        assert rows[0][0] == 1 and rows[0][2] >= 1000

    def test_scheduled_sync_is_deterministic(self):
        first = run_scheduled_sync(seed=8)
        second = run_scheduled_sync(seed=8)
        assert first[1].trace_lines() == second[1].trace_lines()
        assert first[3] == second[3]

    def test_no_version_or_lock_residue_after_the_run(self):
        consolidated, __, __, __ = run_scheduled_sync(seed=4)
        assert consolidated.lock_manager.total_locks() == 0
        assert consolidated.lock_manager.waiting_count() == 0
        assert consolidated.versions.rows_versioned() == 0
