"""Tests for two-way synchronization between remote and consolidated
databases (the disconnected-operation scenario of the paper's intro)."""

import pytest

from repro import Server, ServerConfig
from repro.common.errors import ReproError
from repro.sync import ConflictPolicy, SyncSession

DDL = "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR(10), qty INT)"


def make_pair():
    remote = Server(ServerConfig(start_buffer_governor=False))
    consolidated = Server(ServerConfig(start_buffer_governor=False))
    remote_conn = remote.connect()
    consolidated_conn = consolidated.connect()
    remote_conn.execute(DDL)
    consolidated_conn.execute(DDL)
    session = SyncSession(remote, consolidated, ["orders"])
    return remote_conn, consolidated_conn, session


def rows_of(conn):
    return sorted(conn.execute("SELECT * FROM orders").rows)


class TestUploadDownload:
    def test_remote_inserts_upload(self):
        remote, consolidated, session = make_pair()
        remote.execute("INSERT INTO orders VALUES (1, 'new', 5), (2, 'new', 3)")
        stats = session.synchronize()
        assert stats.uploaded == 2
        assert rows_of(consolidated) == [(1, "new", 5), (2, "new", 3)]

    def test_consolidated_changes_download(self):
        remote, consolidated, session = make_pair()
        consolidated.execute("INSERT INTO orders VALUES (9, 'hq', 1)")
        stats = session.synchronize()
        assert stats.downloaded == 1
        assert rows_of(remote) == [(9, "hq", 1)]

    def test_two_way_in_one_session(self):
        remote, consolidated, session = make_pair()
        remote.execute("INSERT INTO orders VALUES (1, 'field', 2)")
        consolidated.execute("INSERT INTO orders VALUES (2, 'hq', 4)")
        session.synchronize()
        expected = [(1, "field", 2), (2, "hq", 4)]
        assert rows_of(remote) == expected
        assert rows_of(consolidated) == expected

    def test_updates_and_deletes_propagate(self):
        remote, consolidated, session = make_pair()
        remote.execute(
            "INSERT INTO orders VALUES (1, 'new', 5), (2, 'new', 3), "
            "(3, 'new', 9)"
        )
        session.synchronize()
        remote.execute("UPDATE orders SET status = 'done' WHERE id = 1")
        remote.execute("DELETE FROM orders WHERE id = 2")
        session.synchronize()
        assert rows_of(consolidated) == [(1, "done", 5), (3, "new", 9)]

    def test_no_echo_on_repeated_sync(self):
        remote, consolidated, session = make_pair()
        remote.execute("INSERT INTO orders VALUES (1, 'x', 1)")
        first = session.synchronize()
        second = session.synchronize()
        third = session.synchronize()
        assert first.uploaded == 1
        assert (second.uploaded, second.downloaded) == (0, 0)
        assert (third.uploaded, third.downloaded) == (0, 0)
        assert rows_of(remote) == rows_of(consolidated) == [(1, "x", 1)]

    def test_incremental_sync_only_ships_new_changes(self):
        remote, consolidated, session = make_pair()
        remote.execute("INSERT INTO orders VALUES (1, 'a', 1)")
        session.synchronize()
        remote.execute("INSERT INTO orders VALUES (2, 'b', 2)")
        stats = session.synchronize()
        assert stats.uploaded == 1

    def test_uncommitted_changes_not_shipped(self):
        remote, consolidated, session = make_pair()
        remote.execute("BEGIN")
        remote.execute("INSERT INTO orders VALUES (1, 'open', 1)")
        stats = session.synchronize()
        assert stats.uploaded == 0
        assert rows_of(consolidated) == []
        remote.execute("COMMIT")
        assert session.synchronize().uploaded == 1

    def test_non_subscribed_tables_ignored(self):
        remote, consolidated, session = make_pair()
        remote.execute("CREATE TABLE private (id INT PRIMARY KEY)")
        remote.execute("INSERT INTO private VALUES (1)")
        stats = session.synchronize()
        assert stats.uploaded == 0


class TestConflicts:
    def seeded_pair(self, policy):
        remote = Server(ServerConfig(start_buffer_governor=False))
        consolidated = Server(ServerConfig(start_buffer_governor=False))
        remote_conn = remote.connect()
        consolidated_conn = consolidated.connect()
        remote_conn.execute(DDL)
        consolidated_conn.execute(DDL)
        session = SyncSession(
            remote, consolidated, ["orders"], conflict_policy=policy
        )
        remote_conn.execute("INSERT INTO orders VALUES (1, 'new', 5)")
        session.synchronize()
        return remote_conn, consolidated_conn, session

    def test_update_update_consolidated_wins(self):
        remote, consolidated, session = self.seeded_pair(
            ConflictPolicy.CONSOLIDATED_WINS
        )
        remote.execute("UPDATE orders SET status = 'field' WHERE id = 1")
        consolidated.execute("UPDATE orders SET status = 'hq' WHERE id = 1")
        stats = session.synchronize()
        assert len(stats.conflicts) == 1
        assert rows_of(consolidated) == [(1, "hq", 5)]
        assert rows_of(remote) == [(1, "hq", 5)]  # hq value flowed down

    def test_update_update_remote_wins(self):
        remote, consolidated, session = self.seeded_pair(
            ConflictPolicy.REMOTE_WINS
        )
        remote.execute("UPDATE orders SET status = 'field' WHERE id = 1")
        consolidated.execute("UPDATE orders SET status = 'hq' WHERE id = 1")
        stats = session.synchronize()
        assert len(stats.conflicts) >= 1
        assert rows_of(consolidated) == [(1, "field", 5)]

    def test_insert_insert_conflict(self):
        remote = Server(ServerConfig(start_buffer_governor=False))
        consolidated = Server(ServerConfig(start_buffer_governor=False))
        remote_conn = remote.connect()
        consolidated_conn = consolidated.connect()
        remote_conn.execute(DDL)
        consolidated_conn.execute(DDL)
        session = SyncSession(remote, consolidated, ["orders"])
        remote_conn.execute("INSERT INTO orders VALUES (1, 'field', 1)")
        consolidated_conn.execute("INSERT INTO orders VALUES (1, 'hq', 9)")
        stats = session.synchronize()
        assert len(stats.conflicts) >= 1
        # consolidated-wins: both sides settle on the hq row.
        assert rows_of(remote_conn) == [(1, "hq", 9)]
        assert rows_of(consolidated_conn) == [(1, "hq", 9)]

    def test_update_delete_conflict(self):
        remote, consolidated, session = self.seeded_pair(
            ConflictPolicy.CONSOLIDATED_WINS
        )
        remote.execute("UPDATE orders SET qty = 99 WHERE id = 1")
        consolidated.execute("DELETE FROM orders WHERE id = 1")
        stats = session.synchronize()
        assert len(stats.conflicts) == 1
        # Consolidated wins: the delete stands everywhere.
        assert rows_of(consolidated) == []
        assert rows_of(remote) == []

    def test_non_conflicting_updates_both_apply(self):
        remote, consolidated, session = self.seeded_pair(
            ConflictPolicy.CONSOLIDATED_WINS
        )
        remote.execute("INSERT INTO orders VALUES (2, 'r', 1)")
        consolidated.execute("INSERT INTO orders VALUES (3, 'c', 2)")
        stats = session.synchronize()
        assert stats.conflicts == []
        expected = [(1, "new", 5), (2, "r", 1), (3, "c", 2)]
        assert rows_of(remote) == expected
        assert rows_of(consolidated) == expected


class TestValidation:
    def test_requires_primary_key(self):
        remote = Server(ServerConfig(start_buffer_governor=False))
        consolidated = Server(ServerConfig(start_buffer_governor=False))
        remote.connect().execute("CREATE TABLE nopk (a INT)")
        consolidated.connect().execute("CREATE TABLE nopk (a INT)")
        with pytest.raises(ReproError):
            SyncSession(remote, consolidated, ["nopk"])

    def test_sync_survives_crash_recovery(self):
        """Sync-applied changes are as durable as any other write."""
        remote, consolidated, session = make_pair()
        remote.execute("INSERT INTO orders VALUES (1, 'x', 1)")
        session.synchronize()
        consolidated_server = consolidated.server
        consolidated_server.simulate_crash_and_recover()
        assert rows_of(consolidated) == [(1, "x", 1)]
