"""Harness determinism: a run is a pure function of its seeds."""

import pytest

from repro.testgen import AdversarialHarness, replay_triple


def test_harness_run_is_clean_and_counts_add_up():
    result = AdversarialHarness(5, 7, statements=80).run()
    assert result.violations == []
    assert result.oracle_statements == result.tlp_checks + result.norec_checks
    assert result.oracle_statements + result.dml_statements == 80
    assert result.oracle_statements > 0 and result.dml_statements > 0


def test_twice_run_logs_are_byte_identical():
    first = AdversarialHarness(5, 7, statements=80).run()
    second = AdversarialHarness(5, 7, statements=80).run()
    assert first.log_text() == second.log_text()


def test_twice_run_logs_identical_under_chaos_and_bursts():
    kwargs = dict(statements=90, chaos=True, scheduler_bursts=True)
    first = AdversarialHarness(5, 7, **kwargs).run()
    second = AdversarialHarness(5, 7, **kwargs).run()
    assert first.log_text() == second.log_text()
    assert first.bursts >= 2
    assert first.violations == []


def test_different_seed_changes_the_stream():
    a = AdversarialHarness(5, 7, statements=40).run()
    b = AdversarialHarness(6, 7, statements=40).run()
    assert a.log_text() != b.log_text()


@pytest.mark.no_sanitize
def test_replay_triple_clean_engine_returns_none():
    assert replay_triple(5, 7, 30) is None
