"""Oracle mechanics: multisets, TLP recombination, NoREC variants."""

import random

import pytest

from repro import Server, ServerConfig
from repro.testgen import (
    QueryGenerator, SchemaGenerator, check_norec, check_tlp, multiset,
)
from repro.testgen.oracles import multiset_diff, result_digest

SEED = 23


@pytest.fixture()
def loaded():
    schema = SchemaGenerator(SEED).generate()
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    for sql in schema.ddl_statements():
        connection.execute(sql)
    for sql in schema.load_statements(random.Random("load:%d" % SEED)):
        connection.execute(sql)
    return connection, schema


def test_multiset_counts_duplicates():
    assert multiset([(1,), (1,), (2,)]) != multiset([(1,), (2,)])
    assert multiset([(1,), (2,)]) == multiset([(2,), (1,)])


def test_multiset_diff_names_both_sides():
    diff = multiset_diff(multiset([(1,), (1,)]), multiset([(1,), (2,)]))
    assert diff["missing"] == ["(1,)"]
    assert diff["extra"] == ["(2,)"]
    assert diff["expected_rows"] == 2
    assert diff["actual_rows"] == 2


def test_result_digest_is_order_insensitive():
    assert result_digest([(1,), (2,)]) == result_digest([(2,), (1,)])
    assert result_digest([(1,)]) != result_digest([(2,)])


def test_tlp_clean_on_correct_engine(loaded):
    connection, schema = loaded
    generator = QueryGenerator(random.Random("oracle:1"), schema)
    kinds = set()
    for __ in range(60):
        query = generator.tlp_query()
        kinds.add(query.kind)
        outcome = check_tlp(connection, query)
        assert outcome["violation"] is None, outcome["violation"]
    assert {"plain", "distinct", "aggregate"} <= kinds


def test_norec_clean_on_correct_engine(loaded):
    connection, schema = loaded
    generator = QueryGenerator(random.Random("oracle:2"), schema)
    for __ in range(25):
        query = generator.norec_query()
        outcome = check_norec(connection, query)
        assert outcome["violation"] is None, outcome["violation"]


def test_tlp_outcome_digest_is_stable(loaded):
    connection, schema = loaded
    generator = QueryGenerator(random.Random("oracle:3"), schema)
    query = generator.tlp_query()
    first = check_tlp(connection, query)
    second = check_tlp(connection, query)
    assert first == second
