"""Negative controls: planted NULL-semantics bugs must trip TLP.

An oracle that never fires is indistinguishable from one that cannot
fire.  Each planted bug runs the same seeded harness stream; TLP must
catch it, the shrunken triple must reproduce it, and the clean engine
must replay the very same triple without a violation.
"""

import pytest

from repro.testgen import (
    AdversarialHarness,
    OracleViolation,
    kleene_not_bug,
    predicate_pushdown_bug,
    replay_triple,
)

SEED, SCHEMA_SEED, STATEMENTS = 101, 3, 60

#: The first TLP violation both plants produce on the stream above —
#: pinned so the shrink address itself is regression-tested.
PINNED_TRIPLE = (101, 3, 2)

BUGS = (
    ("pushdown", predicate_pushdown_bug),
    ("kleene", kleene_not_bug),
)


@pytest.mark.parametrize("name,bug", BUGS, ids=[n for n, __ in BUGS])
def test_planted_bug_is_caught_by_tlp(name, bug):
    with bug():
        result = AdversarialHarness(SEED, SCHEMA_SEED,
                                    statements=STATEMENTS).run()
    tlp = [v for v in result.violations if v.oracle == "tlp"]
    assert tlp, "TLP is blind to the planted %s bug" % name
    assert tlp[0].shrink_triple() == PINNED_TRIPLE


@pytest.mark.parametrize("name,bug", BUGS, ids=[n for n, __ in BUGS])
def test_pinned_triple_reproduces_and_raises(name, bug):
    with bug():
        violation = replay_triple(*PINNED_TRIPLE)
        assert isinstance(violation, OracleViolation)
        assert violation.oracle == "tlp"
        assert violation.trace  # the statement trace rides along
        with pytest.raises(OracleViolation):
            replay_triple(*PINNED_TRIPLE, raise_on_violation=True)


def test_pinned_triple_is_clean_without_the_plants():
    assert replay_triple(*PINNED_TRIPLE) is None


def test_violation_artifact_round_trips():
    with predicate_pushdown_bug():
        violation = replay_triple(*PINNED_TRIPLE)
    payload = violation.to_dict()
    assert payload["oracle"] == "tlp"
    assert (payload["seed"], payload["schema_seed"],
            payload["statement_index"]) == PINNED_TRIPLE
    assert "replay_triple(101, 3, 2)" in payload["replay"]
    assert payload["trace"]


def test_plants_fully_unwind():
    """After the context managers exit, the engine is whole again."""
    for __, bug in BUGS:
        with bug():
            pass
    result = AdversarialHarness(SEED, SCHEMA_SEED, statements=30).run()
    assert result.violations == []
