"""Seeded query generation: every draw parses, executes, and replays."""

import random

from repro import Server, ServerConfig
from repro.testgen import QueryGenerator, SchemaGenerator

SEED = 13


def _loaded_connection(schema_seed=SEED):
    schema = SchemaGenerator(schema_seed).generate()
    server = Server(ServerConfig(start_buffer_governor=False))
    connection = server.connect()
    for sql in schema.ddl_statements():
        connection.execute(sql)
    for sql in schema.load_statements(random.Random("load:%d" % schema_seed)):
        connection.execute(sql)
    return connection, schema


def test_generated_queries_execute():
    connection, schema = _loaded_connection()
    generator = QueryGenerator(random.Random("qgen:1"), schema)
    for __ in range(40):
        connection.execute(generator.tlp_query().sql())
        connection.execute(generator.norec_query().sql())


def test_generation_is_deterministic():
    schema = SchemaGenerator(SEED).generate()
    draws = []
    for __ in range(2):
        generator = QueryGenerator(random.Random("qgen:2"), schema)
        draws.append([generator.tlp_query().sql() for _ in range(25)]
                     + [generator.norec_query().sql() for _ in range(25)])
    assert draws[0] == draws[1]


def test_shape_and_kind_coverage():
    """Enough draws cover every FROM shape and every query kind."""
    schema = SchemaGenerator(SEED).generate()
    generator = QueryGenerator(random.Random("qgen:3"), schema)
    shapes, kinds = set(), set()
    for __ in range(200):
        query = generator.tlp_query()
        shapes.add(query.shape)
        kinds.add(query.kind)
    assert {"single", "join", "left-join"} <= shapes
    assert {"plain", "distinct", "aggregate"} <= kinds


def test_tlp_sqls_render_all_three_partitions():
    schema = SchemaGenerator(SEED).generate()
    generator = QueryGenerator(random.Random("qgen:4"), schema)
    query = generator.tlp_query()
    unpart, true_sql, false_sql, unknown_sql = query.tlp_sqls()
    assert "WHERE" not in unpart
    assert "WHERE (%s)" % query.predicate in true_sql
    assert "WHERE NOT (%s)" % query.predicate in false_sql
    assert "WHERE (%s) IS NULL" % query.predicate in unknown_sql


def test_tlp_queries_never_limit():
    """LIMIT under TLP would break partition coverage by construction."""
    schema = SchemaGenerator(SEED).generate()
    generator = QueryGenerator(random.Random("qgen:5"), schema)
    for __ in range(100):
        assert generator.tlp_query().limit is None


def test_norec_limit_queries_have_total_order():
    """Every LIMIT query ends its ORDER BY in the per-alias pk, so the
    sort is total and plan variants must agree on the exact list."""
    schema = SchemaGenerator(SEED).generate()
    generator = QueryGenerator(random.Random("qgen:6"), schema)
    seen_limit = False
    for __ in range(150):
        query = generator.norec_query()
        if query.limit is None:
            continue
        seen_limit = True
        assert query.order_by is not None
        assert query.order_by.rstrip().endswith(".pk")
    assert seen_limit
