"""Pinned shrink triples: past oracle catches replayed as assertions.

Each triple below addresses a statement stream that once exposed a real
engine bug during generator bring-up; the fixes live in the optimizer
and executor (see ``tests/optimizer/test_left_join_semantics.py`` for
the minimal forms).  Replaying the triples keeps the *original* seeded
reproductions green, exactly as the CI lane replays violations it
uploads.

To add a triple: paste the ``(seed, schema_seed, statement_index)``
from a metamorphic-soak artifact once the underlying bug is fixed.
"""

import pytest

from repro.testgen import replay_triple

#: (triple, note) — the note names the bug the stream once exposed.
PINNED = (
    ((101, 3, 2), "left-join WHERE placement / NULL-sarg era stream"),
    ((101, 101, 40), "quiescent soak stream, seed 101"),
    ((202, 219, 25), "chaos-era soak stream, seed 202"),
    ((303, 303, 35), "quiescent soak stream, seed 303"),
)


@pytest.mark.parametrize(
    "triple,note", PINNED, ids=[note for __, note in PINNED]
)
def test_pinned_triple_replays_clean(triple, note):
    violation = replay_triple(*triple)
    assert violation is None, "%s regressed: %s" % (note, violation)
