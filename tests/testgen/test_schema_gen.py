"""Seeded schema generation: shape, determinism, executable DDL."""

import random

from repro import Server, ServerConfig
from repro.testgen import SchemaGenerator
from repro.testgen.schema import render_literal, random_dml


def _server():
    return Server(ServerConfig(start_buffer_governor=False))


def test_schema_shape_is_bounded():
    schema = SchemaGenerator(7).generate()
    assert 2 <= len(schema.tables) <= 3
    for table in schema.tables:
        assert 2 <= len(table.columns) <= 4
        assert table.all_column_names()[0] == "pk"
        for column in table.columns:
            assert column.type_name in ("INT", "DOUBLE", "VARCHAR")
            assert 0.0 <= column.null_fraction <= 0.5
        # Secondary indexes never duplicate a column.
        indexed = [column for __, column in table.indexes]
        assert len(indexed) == len(set(indexed))


def test_schema_generation_is_deterministic():
    first = SchemaGenerator(42).generate()
    second = SchemaGenerator(42).generate()
    assert first.ddl_statements() == second.ddl_statements()
    loads_a = first.load_statements(random.Random("load:42"))
    loads_b = second.load_statements(random.Random("load:42"))
    assert loads_a == loads_b
    assert loads_a  # the seeded load is never empty


def test_different_seeds_differ():
    assert (
        SchemaGenerator(1).generate().ddl_statements()
        != SchemaGenerator(2).generate().ddl_statements()
    )


def test_generated_ddl_and_load_execute():
    schema = SchemaGenerator(11).generate()
    server = _server()
    connection = server.connect()
    for sql in schema.ddl_statements():
        connection.execute(sql)
    for sql in schema.load_statements(random.Random("load:11")):
        connection.execute(sql)
    for table in schema.tables:
        rows = connection.execute(
            "SELECT COUNT(*) FROM %s" % table.name
        ).rows
        assert rows[0][0] == table.initial_rows


def test_random_dml_executes():
    schema = SchemaGenerator(11).generate()
    server = _server()
    connection = server.connect()
    for sql in schema.ddl_statements():
        connection.execute(sql)
    for sql in schema.load_statements(random.Random("load:11")):
        connection.execute(sql)
    rng = random.Random("dml:11")
    seen = set()
    for __ in range(60):
        sql = random_dml(rng, rng.choice(schema.tables))
        seen.add(sql.split(None, 1)[0])
        connection.execute(sql)
    assert seen == {"INSERT", "UPDATE", "DELETE"}


def test_render_literal_dialect():
    assert render_literal(None) == "NULL"
    assert render_literal(True) == "TRUE"
    assert render_literal(-3) == "-3"
    assert render_literal(2.5) == "2.5"
    assert render_literal("oak") == "'oak'"
    assert render_literal("o'ak") == "'o''ak'"
