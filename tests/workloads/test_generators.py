"""Unit tests for workload generators."""

import collections

import pytest

from repro import Server, ServerConfig
from repro.workloads import (
    chain_join_sql,
    load_chain_schema,
    load_kv_table,
    load_star_schema,
    point_query_stream,
    range_query_stream,
    star_join_sql,
    zipf_choices,
)


def make_server():
    return Server(ServerConfig(start_buffer_governor=False,
                               initial_pool_pages=2048))


class TestZipf:
    def test_uniform_when_zero_skew(self):
        draws = zipf_choices(10, 0.0, 10_000, seed=1)
        counts = collections.Counter(draws)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_skew_concentrates_low_keys(self):
        draws = zipf_choices(100, 1.2, 10_000, seed=2)
        counts = collections.Counter(draws)
        assert counts[0] > counts.get(50, 0) * 5

    def test_deterministic(self):
        assert zipf_choices(10, 1.0, 100, seed=3) == zipf_choices(10, 1.0, 100, seed=3)

    def test_range(self):
        assert all(0 <= v < 7 for v in zipf_choices(7, 0.5, 500))


class TestKvWorkload:
    def test_load_and_query(self):
        server = make_server()
        conn = load_kv_table(server, n_rows=500, n_distinct_values=10)
        assert conn.execute("SELECT COUNT(*) FROM kv").rows == [(500,)]
        queries = point_query_stream("kv", "k", [1, 2, 3])
        for sql in queries:
            assert len(conn.execute(sql)) == 1

    def test_range_stream(self):
        server = make_server()
        conn = load_kv_table(server, n_rows=200)
        for sql in range_query_stream("kv", "k", [(0, 49), (50, 99)]):
            assert conn.execute(sql).rows[0][0] == 50

    def test_histograms_built_on_load(self):
        server = make_server()
        load_kv_table(server, n_rows=300, n_distinct_values=10)
        assert server.stats.histogram("kv", 1) is not None


class TestStarSchema:
    def test_load_and_join(self):
        server = make_server()
        dims = (("dim_a", 10), ("dim_b", 5))
        conn = load_star_schema(server, n_facts=200, dims=dims)
        result = conn.execute(star_join_sql(dims))
        assert result.rows == [(200,)]

    def test_filtered_star_join(self):
        server = make_server()
        dims = (("dim_a", 10),)
        conn = load_star_schema(server, n_facts=100, dims=dims)
        result = conn.execute(
            star_join_sql(dims, filters=["dim_a.id = 3"])
        )
        assert result.rows[0][0] > 0


class TestChainSchema:
    def test_chain_join_small(self):
        server = make_server()
        conn = load_chain_schema(server, n_tables=4, rows_per_table=4)
        result = conn.execute(chain_join_sql(4))
        # Each row joins exactly one row in the next table.
        assert result.rows == [(4,)]

    def test_single_table_chain(self):
        server = make_server()
        conn = load_chain_schema(server, n_tables=1, rows_per_table=3)
        assert conn.execute(chain_join_sql(1)).rows == [(3,)]

    def test_zero_tables_rejected(self):
        with pytest.raises(ValueError):
            load_chain_schema(make_server(), n_tables=0)
